#include "ttg/world.hpp"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <thread>
#include <utility>

#include "comm/communicator.hpp"
#include "comm/loopback.hpp"
#include "comm/serde.hpp"
#include "comm/term_wave.hpp"
#include "runtime/timer_wheel.hpp"
#include "runtime/trace.hpp"
#include "ttg/runtime.hpp"
#include "ttg/tt.hpp"

namespace ttg {

World::World(const Config& config, int nranks)
    : config_(config), nranks_(nranks) {
  assert(nranks >= 1);
  config_.apply_globals();
  detector_ = std::make_unique<TerminationDetector>(nranks, config_.termdet);
  // Attach the application thread (rank 0's producer) *before* workers
  // exist: an attached active thread keeps its rank non-quiet, so the
  // wave cannot declare termination while the world is still being set
  // up or before the first fence.
  detector_->thread_attach(0);
  queues_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    queues_.push_back(std::make_unique<MessageQueue>(this));
  }
  if (nranks == 1) {
    // The compatibility shim (DESIGN.md §1.1c): a single-rank classic
    // World is a private single-tenant Runtime whose one Context is
    // built exactly as before — same detector, same fault state, same
    // engine shape — so behavior and accounting are unchanged.
    private_runtime_.reset(new Runtime(config_, detector_.get(),
                                       &own_fault_));
    contexts_.push_back(&private_runtime_->context());
  } else {
    owned_contexts_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      owned_contexts_.push_back(std::make_unique<Context>(
          config_, detector_.get(), r, &own_fault_));
      contexts_.push_back(owned_contexts_.back().get());
    }
  }
  for (int r = 0; r < nranks; ++r) {
    contexts_[static_cast<std::size_t>(r)]->set_progress_source(
        queues_[static_cast<std::size_t>(r)].get());
  }
  if (nranks > 1) {
    // Serialized cross-rank sends travel through the loopback fabric:
    // rank i's endpoint posts a frame and rank j's handler lands it in
    // rank j's message queue — the same protocol code the TCP transport
    // drives from its progress thread.
    fabric_ = std::make_unique<comm::LoopbackFabric>(nranks);
    for (int r = 0; r < nranks; ++r) {
      fabric_->endpoint(r).set_frame_handler(
          [this, r](int source, const std::byte* data, std::size_t n) {
            on_wire_frame(r, source, data, n);
          });
    }
  }
  if (config_.watchdog_quiet_ms > 0) {
    watchdog_ = std::make_unique<StallWatchdog>(
        config_.watchdog_quiet_ms,
        [this] {
          return StallWatchdog::Sample{
              progress_counter(), detector_->total_pending() > 0};
        },
        [this] { on_stall(); });
  }
}

World::World(const Config& config, std::shared_ptr<comm::Communicator> comm)
    : config_(config), nranks_(comm->size()) {
  comm_ = std::move(comm);
  comm_rank_ = comm_->rank();
  assert(nranks_ >= 1 && nranks_ <= 64);
  assert(comm_rank_ >= 0 && comm_rank_ < nranks_);
  config_.apply_globals();
  detector_ = std::make_unique<TerminationDetector>(nranks_, config_.termdet);
  // This process hosts exactly one rank; the in-process reduction would
  // announce on it alone, so the wave runs over the transport instead.
  detector_->set_external_wave(true);
  detector_->thread_attach(comm_rank_);
  queues_.push_back(std::make_unique<MessageQueue>(this));
  owned_contexts_.push_back(std::make_unique<Context>(
      config_, detector_.get(), comm_rank_, &own_fault_));
  contexts_.push_back(owned_contexts_.back().get());
  contexts_[0]->set_progress_source(queues_[0].get());
  comm_->set_frame_handler(
      [this](int source, const std::byte* data, std::size_t n) {
        on_wire_frame(/*local_index=*/0, source, data, n);
      });
  comm_->set_loss_handler([this](int peer, const std::string& why) {
    on_peer_lost(peer, why);
  });
  if (config_.watchdog_quiet_ms > 0) {
    watchdog_ = std::make_unique<StallWatchdog>(
        config_.watchdog_quiet_ms,
        [this] {
          return StallWatchdog::Sample{
              progress_counter(), detector_->total_pending() > 0};
        },
        [this] { on_stall(); });
  }
}

World::World(Runtime& runtime, WorldOptions options)
    : config_(runtime.config()),
      nranks_(1),
      runtime_(&runtime),
      options_(std::move(options)) {
  world_id_ = runtime.allocate_world_id();
  tenant_ = std::make_unique<TenantState>(world_id_);
  tenant_->priority_boost =
      options_.priority_class *
      (std::int32_t{1} << WorldOptions::kPriorityClassShift);
  fault_ = &tenant_->fault;
  owned_contexts_.push_back(std::make_unique<Context>(
      config_, runtime.engine(), tenant_.get()));
  contexts_.push_back(owned_contexts_.back().get());
  runtime.register_world(world_id_, this);
}

World::~World() {
  // The watchdog samples contexts and the detector: stop it first.
  watchdog_.reset();
  // Stop transport ingress before the graph/queue state it delivers
  // into goes away; also announces a clean goodbye so peers do not
  // mistake our EOF for a loss.
  if (comm_ != nullptr) comm_->shutdown();
  if (tenant_ != nullptr) {
    assert(tenant_->quiescent() &&
           "tenant World destroyed with tasks in flight");
    runtime_->cancel_deadline(tenant_.get());
    if (admitted_) {
      runtime_->release_admission();
      admitted_ = false;
    }
    // After this the Runtime's watchdog/reports no longer see us.
    runtime_->unregister_world(world_id_);
  }
  // Contexts join their workers before the queues they poll disappear.
  owned_contexts_.clear();
  private_runtime_.reset();
  queues_.clear();
}

int World::current_rank() const {
  if (Worker* w = Context::current_worker(); w != nullptr) return w->rank();
  return comm_rank_;
}

Submission World::execute() {
  if (tenant_ != nullptr) {
    assert(!epoch_open_.load(std::memory_order_relaxed) &&
           "execute() with the previous epoch still open");
    if (needs_reset_) {
      tenant_->unseal();
      tenant_->fault.reset();
      needs_reset_ = false;
    }
    seeds_sealed_.store(false, std::memory_order_relaxed);
    const std::uint64_t seq =
        epoch_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    // Admission: under kShed an over-limit epoch completes immediately
    // as kShed (the cancellation edge drops any stray seeds at
    // ingress); under kQueue admit() blocks in FIFO order.
    if (!admitted_) {
      if (runtime_->admit()) {
        admitted_ = true;
      } else {
        tenant_->fault.request_shed(
            "admission: runtime at max in-flight epochs");
      }
    }
    if (options_.deadline_ms > 0 && !tenant_->fault.cancelled()) {
      runtime_->register_deadline(
          tenant_.get(),
          std::chrono::steady_clock::now() +
              std::chrono::milliseconds(options_.deadline_ms));
    }
    epoch_open_.store(true, std::memory_order_release);
    return Submission(this, seq);
  }

  if (comm_ != nullptr && comm_failed_.load(std::memory_order_acquire)) {
    // A distributed epoch that lost a peer (or aborted) leaves the mesh
    // inconsistent — the survivors cannot agree on epoch state. Fail
    // loudly instead of hanging a fresh epoch.
    std::fprintf(stderr,
                 "ttg: execute() on a distributed world after a failed "
                 "epoch; the process mesh is no longer usable\n");
    std::abort();
  }
  // Resume the producer *before* resetting the detector: once rank 0 has
  // an active thread again, the freshly-reset wave cannot re-announce
  // termination in the window before the first task is submitted.
  context(0).begin();
  if (needs_reset_) {
    detector_->reset();
    // The previous epoch's outcome was consumed by wait()/status();
    // the new epoch starts healthy.
    own_fault_.reset();
    needs_reset_ = false;
  }
  if (comm_ != nullptr) open_wire_epoch();
  seeds_sealed_.store(false, std::memory_order_relaxed);
  const std::uint64_t seq =
      epoch_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  epoch_open_.store(true, std::memory_order_release);
  return Submission(this, seq);
}

void World::seal_seeds() {
  if (seeds_sealed_.load(std::memory_order_acquire)) return;
  const EpochMode mode = epoch_mode();
  if (mode == EpochMode::kReplay) {
    // Every recorded external seed must have been re-delivered, or some
    // slots can never fire; turn the shortfall into a clean abort
    // instead of a hang.
    detail::ReplayFrame& frame = detail::t_replay_frame;
    if (frame.cursor != frame.cursor_end) {
      abort("replay: fewer external seeds than the recorded epoch");
    }
    flush_replay_ready();
    detail::t_replay_frame = detail::ReplayFrame{};
  } else if (mode == EpochMode::kRecording) {
    detail::t_record_frame = detail::RecordFrame{};
  }
  seeds_sealed_.store(true, std::memory_order_release);
  // Seal last: the tenant's pending count may only hit a *final* zero
  // after every seed of this epoch was accounted.
  if (tenant_ != nullptr) tenant_->seal();
}

Status World::wait() {
  assert(epoch_open_.load(std::memory_order_acquire) &&
         "wait() without execute()");
  const EpochMode mode = epoch_mode();
  seal_seeds();
  const Status st = tenant_ != nullptr  ? wait_tenant(mode)
                    : comm_ != nullptr ? wait_distributed(mode)
                                       : wait_classic(mode);
  record_completion(st);
  epoch_open_.store(false, std::memory_order_release);
  needs_reset_ = true;
  return st;
}

Status World::wait_classic(EpochMode mode) {
  if (watchdog_ != nullptr) watchdog_->arm();
  // The calling thread stops producing: flush its counters and take part
  // in the wave until termination is announced.
  detector_->on_idle();
  int spins = 0;
  bool replay_purged = false;
  while (!detector_->terminated()) {
    if (own_fault_.cancelled()) {
      if (mode == EpochMode::kReplay) {
        // One pass claims every unfired slot (the claim bit makes later
        // deliveries stand down); ready-but-queued records are dropped
        // by the engine's ingress/pop path instead.
        if (!replay_purged && replay_instance_ != nullptr) {
          replay_purged = true;
          const std::size_t claimed = replay_instance_->purge_cancelled();
          if (claimed > 0) {
            detector_->on_cancelled(0, static_cast<std::int64_t>(claimed));
            detector_->on_idle();
          }
        }
      } else {
        purge_cancelled();
      }
    }
    detector_->advance_wave();
    if (++spins < 256) {
      std::this_thread::yield();
    } else {
      // Long-running tasks: back off to a microsleep so the fence thread
      // does not compete with workers for the core.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  if (watchdog_ != nullptr) watchdog_->disarm();
  const Status st = own_fault_.status();
  if (mode == EpochMode::kReplay) {
    // A clean replay leaves every slot executed and cleared; after a
    // failure/abort, sweep input copies still parked in unfired records.
    if (!st.ok() && replay_instance_ != nullptr) {
      replay_instance_->discard_inputs();
    }
    replay_instance_ = nullptr;
    epoch_mode_.store(EpochMode::kDynamic, std::memory_order_relaxed);
  } else if (mode == EpochMode::kRecording) {
    epoch_mode_.store(EpochMode::kDynamic, std::memory_order_relaxed);
  }
  return st;
}

Status World::wait_distributed(EpochMode mode) {
  assert(mode == EpochMode::kDynamic &&
         "distributed worlds run dynamic epochs only");
  (void)mode;
  if (watchdog_ != nullptr) watchdog_->arm();
  // The calling thread stops producing; from here it drives the local
  // side of the token-ring wave until the root's announcement arrives
  // (or the epoch is cancelled).
  detector_->on_idle();
  int spins = 0;
  while (!detector_->terminated()) {
    if (own_fault_.cancelled()) break;
    wave_->poll();
    if (++spins < 256) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  if (own_fault_.cancelled() && !detector_->terminated()) {
    // Failed epoch: the global wave cannot converge (a peer may be dead
    // or mid-abort), so fall back to a *local* drain — stop accepting
    // ingress, purge until this rank's pending count reaches zero, and
    // report the failure. The World refuses further epochs.
    comm_failed_.store(true, std::memory_order_release);
    for (;;) {
      purge_cancelled();
      if (detector_->rank_pending(comm_rank_) == 0) break;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  if (watchdog_ != nullptr) watchdog_->disarm();
  return own_fault_.status();
}

Status World::wait_tenant(EpochMode mode) {
  TenantState& t = *tenant_;
  bool replay_purged = false;
  // The epoch is over when the seeder sealed and every accounted task
  // retired (see TenantState for the soundness argument). The wait is
  // timed so cancellation purge work keeps running while producers
  // drain.
  while (!(t.sealed() && t.quiescent())) {
    if (t.fault.cancelled()) {
      if (mode == EpochMode::kReplay) {
        if (!replay_purged && replay_instance_ != nullptr) {
          replay_purged = true;
          const std::size_t claimed = replay_instance_->purge_cancelled();
          if (claimed > 0) {
            t.on_cancelled(static_cast<std::int64_t>(claimed));
          }
        }
      } else {
        purge_cancelled();
      }
    }
    t.wait_progress(std::chrono::milliseconds(1));
  }
  const Status st = t.fault.status();
  if (mode == EpochMode::kReplay) {
    if (!st.ok() && replay_instance_ != nullptr) {
      replay_instance_->discard_inputs();
    }
    replay_instance_ = nullptr;
    epoch_mode_.store(EpochMode::kDynamic, std::memory_order_relaxed);
  } else if (mode == EpochMode::kRecording) {
    epoch_mode_.store(EpochMode::kDynamic, std::memory_order_relaxed);
  }
  if (options_.deadline_ms > 0) runtime_->cancel_deadline(&t);
  if (admitted_) {
    runtime_->release_admission();
    admitted_ = false;
  }
  return st;
}

void World::record_completion(const Status& st) {
  std::exception_ptr ep;
  if (!st.ok()) {
    try {
      fault_->rethrow();
    } catch (...) {
      ep = std::current_exception();
    }
  }
  std::lock_guard<std::mutex> lock(status_mutex_);
  last_status_ = st;
  last_error_ = ep;
  completed_seq_ = epoch_seq_.load(std::memory_order_relaxed);
}

bool World::submission_done(std::uint64_t seq) const {
  {
    std::lock_guard<std::mutex> lock(status_mutex_);
    if (completed_seq_ >= seq) return true;
  }
  if (epoch_seq_.load(std::memory_order_acquire) != seq ||
      !epoch_open_.load(std::memory_order_acquire)) {
    return false;
  }
  if (tenant_ != nullptr) return tenant_->sealed() && tenant_->quiescent();
  return detector_->terminated();
}

Status World::submission_wait(std::uint64_t seq) {
  {
    std::lock_guard<std::mutex> lock(status_mutex_);
    if (completed_seq_ >= seq) return last_status_;
  }
  assert(seq == epoch_seq_.load(std::memory_order_acquire) &&
         "stale Submission waited before its epoch was recorded");
  return wait();
}

Status World::submission_status(std::uint64_t seq) const {
  {
    std::lock_guard<std::mutex> lock(status_mutex_);
    if (completed_seq_ >= seq) return last_status_;
  }
  return fault_->status();
}

std::exception_ptr World::submission_error(std::uint64_t seq) const {
  std::lock_guard<std::mutex> lock(status_mutex_);
  return completed_seq_ >= seq ? last_error_ : nullptr;
}

void World::begin_recording() {
  assert(nranks_ == 1 &&
         "recording requires a single-rank world (keymaps resolve "
         "locally)");
  assert(comm_ == nullptr && "recording requires an in-process world");
  (void)execute();
  recorder_ = std::make_unique<GraphRecorder>();
  epoch_mode_.store(EpochMode::kRecording, std::memory_order_relaxed);
  // The calling thread is the external producer: its seeds are recorded
  // in call order as the template's external deliveries.
  detail::t_record_frame =
      detail::RecordFrame{recorder_.get(), GraphRecorder::kExternalProducer};
}

std::shared_ptr<GraphTemplate> World::end_recording() {
  assert(!epoch_open_.load(std::memory_order_acquire) &&
         "end_recording() before the recording epoch fenced");
  if (recorder_ == nullptr) return nullptr;
  std::shared_ptr<GraphTemplate> tmpl;
  if (fault_->status().ok()) tmpl = recorder_->finalize();
  recorder_.reset();
  return tmpl;
}

Submission World::execute_replay(ReplayInstance& instance) {
  assert(nranks_ == 1 && "replay requires a single-rank world");
  assert(comm_ == nullptr && "replay requires an in-process world");
  assert(epoch_mode() == EpochMode::kDynamic &&
         "execute_replay() during an open recording/replay epoch");
  const Submission handle = execute();
  // Re-arm the arena *before* the mode flips: once deliveries can
  // arrive, every join counter must already hold its expected count.
  instance.begin_epoch();
  // Every copy the previous replay epoch allocated died before its
  // fence returned, so the per-thread copy arenas can be rewound here:
  // one arena per worker plus a trailing one for this (external
  // seeding) thread.
  const auto workers =
      static_cast<std::size_t>(context(0).num_threads());
  instance.arm_copy_arenas(workers + 1);
  replay_instance_ = &instance;
  epoch_mode_.store(EpochMode::kReplay, std::memory_order_relaxed);
  // Bulk discovery: the whole template is accounted in one counter
  // update instead of one on_discovered per task.
  const auto slots = static_cast<std::int64_t>(instance.graph().num_slots());
  if (slots > 0) context(0).on_discovered(slots);
  const GraphTemplate& g = instance.graph();
  const SuccessorRef* ext = g.external_deliveries().data();
  detail::t_replay_frame = detail::ReplayFrame{
      &instance, ext, ext + g.external_deliveries().size(), nullptr, 0,
      /*external=*/true, instance.copy_arena(workers)};
  return handle;
}

void World::enqueue_replay_ready(TaskBase* task) {
  detail::ReplayFrame& frame = detail::t_replay_frame;
  // Descending-priority insertion, matching the worker bundling
  // discipline, so the chain honors push_chain's sortedness contract.
  LifoNode* prev = nullptr;
  LifoNode* cur = frame.ready_head;
  while (cur != nullptr && cur->priority > task->priority) {
    prev = cur;
    cur = cur->next.load(std::memory_order_relaxed);
  }
  task->next.store(cur, std::memory_order_relaxed);
  if (prev == nullptr) {
    frame.ready_head = task;
  } else {
    prev->next.store(task, std::memory_order_relaxed);
  }
  if (++frame.ready_count >= ExecutionEngine::kMaxBatch) {
    flush_replay_ready();
  }
}

void World::flush_replay_ready() {
  detail::ReplayFrame& frame = detail::t_replay_frame;
  if (frame.ready_head == nullptr) return;
  TaskBase* head = frame.ready_head;
  frame.ready_head = nullptr;
  frame.ready_count = 0;
  context(0).submit(head, SubmitHint::kChain);
}

void World::abort(std::string reason) {
  // Distributed worlds propagate the abort to every peer (best effort)
  // before cancelling locally, so survivors' wait() returns instead of
  // spinning on a wave that can no longer converge.
  if (comm_ != nullptr) broadcast_abort(reason);
  abort_local(std::move(reason));
}

void World::abort_local(std::string reason) {
  if (fault_->request_abort(std::move(reason))) {
    trace::record(trace::EventKind::kWorldAborted,
                  static_cast<std::uint64_t>(Outcome::kAborted));
  }
  // Wake every rank's parked workers so they drain (and drop) the
  // queues and the termination wave converges; a tenant waiter gets an
  // immediate nudge too.
  for (Context* c : contexts_) c->notify_work();
  if (tenant_ != nullptr) tenant_->notify();
}

void World::set_fault_plan(const FaultPlan* plan) {
  for (Context* c : contexts_) c->set_fault_plan(plan);
}

void World::set_stall_handler(
    std::function<void(const std::string&)> handler) {
  std::lock_guard<std::mutex> lock(stall_mutex_);
  stall_handler_ = std::move(handler);
}

void World::register_node(TTBase* node) {
  std::lock_guard<std::mutex> lock(nodes_mutex_);
  // Registration order assigns the dense wire id; SPMD construction
  // (every rank builds the same TTs in the same order) makes the ids
  // agree across processes. Slots are never reused within a World.
  node->set_comm_node_id(static_cast<std::uint32_t>(nodes_by_id_.size()));
  nodes_by_id_.push_back(node);
  nodes_.push_back(node);
}

void World::unregister_node(TTBase* node) {
  std::lock_guard<std::mutex> lock(nodes_mutex_);
  const std::uint32_t id = node->comm_node_id();
  if (id < nodes_by_id_.size() && nodes_by_id_[id] == node) {
    nodes_by_id_[id] = nullptr;
  }
  for (auto it = nodes_.begin(); it != nodes_.end(); ++it) {
    if (*it == node) {
      nodes_.erase(it);
      return;
    }
  }
}

TTBase* World::node_by_comm_id(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(nodes_mutex_);
  return id < nodes_by_id_.size() ? nodes_by_id_[id] : nullptr;
}

void World::purge_cancelled() {
  std::size_t purged = 0;
  {
    std::lock_guard<std::mutex> lock(nodes_mutex_);
    for (TTBase* node : nodes_) purged += node->purge_pending_tasks();
  }
  // Claim suspended coroutine continuations parked on this World's
  // InputGates and on the engine timer wheel(s), submitting them back to
  // the engine whose ingress drops each as a cancelled completion (the
  // cancel hook destroys the frame without resuming it). Both paths are
  // self-accounting through drop_cancelled, so they do NOT add to
  // `purged`. Looped by wait(): a still-running body can suspend after
  // this sweep, and its +1 discovery keeps the census from converging
  // until a later sweep claims it.
  std::size_t claimed = coro_sources_.cancel_parked_all();
  for (Context* c : contexts_) {
    claimed += c->engine().timers().cancel_for(fault_);
  }
  if (purged > 0) {
    // The discarded records were accounted as discovered; retire them as
    // cancelled completions so the wave (or the tenant's pending count)
    // sees the new balance.
    if (tenant_ != nullptr) {
      tenant_->on_cancelled(static_cast<std::int64_t>(purged));
    } else {
      detector_->on_cancelled(0, static_cast<std::int64_t>(purged));
    }
  }
  if (tenant_ == nullptr && (purged > 0 || claimed > 0)) {
    // Coroutine claims were already retired through the engine's ingress
    // drop on *this* thread; flush the thread-local counters so the wave
    // sees those completions (without this the fence never converges).
    detector_->on_idle();
  }
}

std::uint64_t World::progress_counter() const {
  if (tenant_ != nullptr) return tenant_->retired();
  std::uint64_t n = messages_delivered();
  for (const Context* c : contexts_) {
    ExecutionEngine& e = const_cast<Context*>(c)->engine();
    n += e.total_tasks_executed() + e.failed_tasks() + e.cancelled_tasks();
  }
  return n;
}

std::string World::stall_report() const {
  std::ostringstream os;
  if (tenant_ != nullptr) {
    os << "=== stall report (world " << world_id_;
    if (!options_.name.empty()) os << " '" << options_.name << "'";
    os << ") ===\n";
    os << "tenant: pending=" << tenant_->pending()
       << " retired=" << tenant_->retired()
       << " failed=" << tenant_->failed()
       << " cancelled=" << tenant_->cancelled()
       << " sealed=" << (tenant_->sealed() ? "yes" : "no") << "\n";
    os << runtime_->stall_report();
    return os.str();
  }
  os << "=== stall report ===\n";
  os << "config: " << config_.describe() << "\n";
  os << "progress: tasks+faults+messages=" << progress_counter()
     << " messages_delivered=" << messages_delivered() << "\n";
  os << "termdet: discovered=" << detector_->total_discovered()
     << " completed=" << detector_->total_completed()
     << " cancelled=" << detector_->total_cancelled()
     << " terminated=" << (detector_->terminated() ? "yes" : "no") << "\n";
  for (std::size_t i = 0; i < contexts_.size(); ++i) {
    // Distributed worlds host one context: the local process rank's.
    const int r = comm_ != nullptr ? comm_rank_ : static_cast<int>(i);
    ExecutionEngine& e = contexts_[i]->engine();
    const StealStats stats = contexts_[i]->scheduler().steal_stats();
    os << "rank " << r << ": pending=" << detector_->rank_pending(r)
       << " executed=" << e.total_tasks_executed()
       << " failed=" << e.failed_tasks()
       << " cancelled=" << e.cancelled_tasks()
       << " parked=" << e.parked_workers() << "/" << e.num_threads()
       << " steal_attempts=" << stats.attempts
       << " steal_successes=" << stats.successes
       << " ingress_hits=" << stats.ingress_hits << "\n";
  }
  if (trace::enabled()) {
    os << "--- trace summary ---\n";
    trace::write_summary(os);
  }
  return os.str();
}

void World::on_stall(bool engine_quiet) {
  std::string report = stall_report();
  if (tenant_ != nullptr) {
    report += engine_quiet
                  ? "verdict: engine quiet (no task progressed anywhere "
                    "over the window)\n"
                  : "verdict: this World quiet while the engine made "
                    "progress (tenant-local stall)\n";
  }
  std::function<void(const std::string&)> handler;
  {
    std::lock_guard<std::mutex> lock(stall_mutex_);
    handler = stall_handler_;
  }
  if (handler) {
    handler(report);
    return;
  }
  // Default: log and abort so wait() returns instead of hanging forever.
  std::fprintf(stderr,
               "ttg: stall watchdog fired (no progress for %d ms on live "
               "work)\n%s",
               config_.watchdog_quiet_ms, report.c_str());
  abort("stall watchdog: no progress for " +
        std::to_string(config_.watchdog_quiet_ms) + "ms with live work");
}

void World::post_message(int target_rank, std::function<void()> deliver) {
  assert(target_rank >= 0 && target_rank < nranks_);
  if (tenant_ != nullptr) {
    // Tenant worlds are single-rank with no message plane: deliver
    // inline on the calling thread.
    deliver();
    messages_delivered_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Closures cannot cross a process boundary: distributed cross-rank
  // traffic goes through post_wire (forward_remote aborts with a
  // diagnostic for non-serializable types before reaching here).
  assert((comm_ == nullptr || target_rank == comm_rank_) &&
         "closure message addressed to a remote process");
  const std::size_t idx =
      comm_ != nullptr ? 0 : static_cast<std::size_t>(target_rank);
  detector_->on_message_sent();
  trace::record(trace::EventKind::kMessageSent,
                static_cast<std::uint32_t>(target_rank));
  auto* msg = new Message;
  msg->deliver = std::move(deliver);
  queues_[idx]->push(msg);
  contexts_[idx]->notify_work();
}

std::uint64_t World::total_tasks_executed() const {
  if (tenant_ != nullptr) return tenant_->executed();
  std::uint64_t n = 0;
  for (const Context* c : contexts_) n += c->total_tasks_executed();
  return n;
}

namespace {
// Frame layout: u8 kind + u64 epoch, then the kind-specific payload.
constexpr std::size_t kWireHeaderBytes = 1 + 8;
}  // namespace

void World::wire_delivery_header(comm::WireWriter& w, std::uint32_t node_id,
                                 std::uint16_t input) {
  w.pod(static_cast<std::uint8_t>(WireKind::kDelivery));
  w.pod(comm_epoch_.load(std::memory_order_relaxed));
  w.pod(node_id);
  w.pod(input);
}

void World::post_wire(int target_rank, std::vector<std::byte> frame) {
  assert(target_rank >= 0 && target_rank < nranks_);
  assert(frame.size() >= kWireHeaderBytes);
  detector_->on_message_sent();
  trace::record(trace::EventKind::kMessageSent,
                static_cast<std::uint32_t>(target_rank));
  if (comm_ != nullptr) {
    try {
      comm_->post(target_rank, frame.data(), frame.size());
    } catch (const std::exception& e) {
      // The peer is gone (or the transport shut down): the epoch cannot
      // complete — surface it as an abort rather than an exception on a
      // worker. The message stays sent-but-never-received, which is fine
      // because the cancelled epoch exits through the local drain.
      abort(std::string("wire send to rank ") + std::to_string(target_rank) +
            " failed: " + e.what());
    }
    return;
  }
  fabric_->endpoint(current_rank()).post(target_rank, frame.data(),
                                         frame.size());
}

void World::on_wire_frame(int local_index, int source, const std::byte* data,
                          std::size_t n) {
  if (comm_failed_.load(std::memory_order_acquire)) return;
  if (n < kWireHeaderBytes) {
    abort_local("corrupt wire frame from rank " + std::to_string(source));
    return;
  }
  std::vector<std::byte> frame(data, data + n);
  const auto kind = std::to_integer<std::uint8_t>(frame[0]);
  if (comm_ == nullptr) {
    // Loopback: delivery is synchronous within one process, so the
    // sender's epoch is by construction the current one.
    dispatch_wire(local_index, source, kind, std::move(frame));
    return;
  }
  std::uint64_t epoch = 0;
  std::memcpy(&epoch, frame.data() + 1, sizeof(epoch));
  std::unique_lock<std::mutex> lock(comm_mutex_);
  const std::uint64_t cur = comm_epoch_.load(std::memory_order_relaxed);
  if (epoch > cur) {
    // The sender already entered a later epoch (it saw the previous
    // wave converge before we did). Hold the frame until execute()
    // advances us.
    deferred_frames_.push_back(
        DeferredFrame{local_index, source, epoch, std::move(frame)});
    return;
  }
  if (epoch < cur) return;  // stale: late token/announce of a dead epoch
  if (static_cast<WireKind>(kind) == WireKind::kDelivery) {
    lock.unlock();  // queue push needs no epoch stability
  }
  // Control frames stay under comm_mutex_: wave_ cannot be swapped by a
  // concurrent execute() while we hand them to it.
  dispatch_wire(local_index, source, kind, std::move(frame));
}

void World::dispatch_wire(int local_index, int source, std::uint8_t kind,
                          std::vector<std::byte> frame) {
  switch (static_cast<WireKind>(kind)) {
    case WireKind::kDelivery: {
      // Decode on a worker of the target rank, not on the transport's
      // progress thread: the payload is parsed inside the message
      // delivery, so a corrupt frame fails the epoch through the
      // drain()'s failure capture instead of crashing the transport.
      auto* msg = new Message;
      msg->deliver = [this, bytes = std::move(frame)] {
        comm::WireReader r(bytes.data() + kWireHeaderBytes,
                           bytes.size() - kWireHeaderBytes);
        const auto node_id = r.pod<std::uint32_t>();
        const auto input = r.pod<std::uint16_t>();
        TTBase* node = node_by_comm_id(node_id);
        if (node == nullptr) {
          throw comm::WireError("wire delivery to unknown node id " +
                                std::to_string(node_id));
        }
        node->deliver_wire(input, r);
      };
      queues_[static_cast<std::size_t>(local_index)]->push(msg);
      contexts_[static_cast<std::size_t>(local_index)]->notify_work();
      return;
    }
    case WireKind::kTermToken: {
      comm::TermToken t;
      try {
        comm::WireReader r(frame.data() + kWireHeaderBytes,
                           frame.size() - kWireHeaderBytes);
        t.round = r.pod<std::uint32_t>();
        t.sent = r.pod<std::int64_t>();
        t.received = r.pod<std::int64_t>();
        r.expect_consumed();
      } catch (const comm::WireError&) {
        abort_local("corrupt termination token from rank " +
                    std::to_string(source));
        return;
      }
      if (wave_ != nullptr) wave_->on_token(t);
      return;
    }
    case WireKind::kAnnounce:
      if (wave_ != nullptr) wave_->on_announce();
      return;
    case WireKind::kAbort: {
      std::string reason = "abort from rank " + std::to_string(source);
      try {
        comm::WireReader r(frame.data() + kWireHeaderBytes,
                           frame.size() - kWireHeaderBytes);
        reason += ": " + comm::Serde<std::string>::unpack(r);
        r.expect_consumed();
      } catch (const comm::WireError&) {
        // Propagate the abort even if the reason string is mangled.
      }
      abort_local(std::move(reason));
      return;
    }
  }
  abort_local("unknown wire frame kind from rank " + std::to_string(source));
}

void World::on_peer_lost(int peer, const std::string& why) {
  // A dead peer makes the mesh (and any open epoch) unrecoverable:
  // refuse further ingress and cancel so every survivor's wait()
  // returns a failed Status instead of hanging on the wave.
  comm_failed_.store(true, std::memory_order_release);
  abort_local("rank " + std::to_string(peer) + " lost: " + why);
}

void World::broadcast_abort(const std::string& reason) {
  std::vector<std::byte> frame;
  comm::WireWriter w(frame);
  w.pod(static_cast<std::uint8_t>(WireKind::kAbort));
  w.pod(comm_epoch_.load(std::memory_order_relaxed));
  comm::Serde<std::string>::pack(reason, w);
  for (int r = 0; r < nranks_; ++r) {
    if (r == comm_rank_) continue;
    try {
      comm_->post(r, frame.data(), frame.size());
    } catch (const std::exception&) {
      // Lost peer: its loss already (or will) abort us; nothing to do.
    }
  }
}

void World::open_wire_epoch() {
  std::vector<DeferredFrame> ready;
  {
    std::lock_guard<std::mutex> lock(comm_mutex_);
    const std::uint64_t epoch =
        comm_epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
    comm::TermWave::Hooks hooks;
    const int self = comm_rank_;
    hooks.locally_quiet = [this, self] {
      return detector_->rank_locally_quiet(self);
    };
    hooks.sent = [this, self] { return detector_->rank_sent(self); };
    hooks.received = [this, self] { return detector_->rank_received(self); };
    hooks.forward = [this](const comm::TermToken& t) {
      std::vector<std::byte> frame;
      comm::WireWriter w(frame);
      w.pod(static_cast<std::uint8_t>(WireKind::kTermToken));
      w.pod(comm_epoch_.load(std::memory_order_relaxed));
      w.pod(t.round);
      w.pod(t.sent);
      w.pod(t.received);
      const int next = (comm_rank_ + 1) % nranks_;
      try {
        comm_->post(next, frame.data(), frame.size());
      } catch (const std::exception&) {
        // Peer lost: the loss handler aborts the epoch; the wave simply
        // stops circulating.
      }
    };
    hooks.announce = [this] {
      std::vector<std::byte> frame;
      comm::WireWriter w(frame);
      w.pod(static_cast<std::uint8_t>(WireKind::kAnnounce));
      w.pod(comm_epoch_.load(std::memory_order_relaxed));
      for (int r = 0; r < nranks_; ++r) {
        if (r == comm_rank_) continue;
        try {
          comm_->post(r, frame.data(), frame.size());
        } catch (const std::exception&) {
        }
      }
    };
    hooks.on_terminated = [this] { detector_->announce(); };
    wave_ = std::make_unique<comm::TermWave>(comm_rank_, nranks_,
                                             std::move(hooks));
    // Frames a faster peer sent for this epoch before we entered it.
    auto it = deferred_frames_.begin();
    while (it != deferred_frames_.end()) {
      if (it->epoch == epoch) {
        ready.push_back(std::move(*it));
        it = deferred_frames_.erase(it);
      } else if (it->epoch < epoch) {
        it = deferred_frames_.erase(it);  // stale
      } else {
        ++it;
      }
    }
  }
  for (DeferredFrame& f : ready) {
    const auto kind = std::to_integer<std::uint8_t>(f.bytes[0]);
    dispatch_wire(f.local_index, f.source, kind, std::move(f.bytes));
  }
}

void World::MessageQueue::drain(Worker& worker) {
  while (LifoNode* node = queue_.pop()) {
    auto* msg = static_cast<Message*>(node);
    world_->detector_->on_message_received();
    trace::record(trace::EventKind::kMessageReceived,
                  static_cast<std::uint32_t>(worker.rank()));
    try {
      msg->deliver();
    } catch (...) {
      // A throwing delivery (a payload whose copy constructor throws
      // during re-materialization, or a corrupt/truncated wire frame
      // rejected by WireReader) is a task failure: capture and cancel
      // instead of terminating the worker.
      world_->context(worker.rank())
          .engine()
          .report_task_failure(std::current_exception(), /*span_name=*/0,
                               worker.index());
    }
    world_->messages_delivered_.fetch_add(1, std::memory_order_relaxed);
    delete msg;
  }
}

}  // namespace ttg
