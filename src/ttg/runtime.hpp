// Runtime: a shared engine pool serving many lightweight Worlds.
//
// The multi-tenant serving mode (docs/serving.md) decouples the engine
// lifecycle from the graph lifecycle. A Runtime owns what is expensive
// and shared — the worker threads, the scheduler and its ingress
// shards, the parking lot, trace/metrics — and make_world() mints
// lightweight Worlds whose construction is a TenantState allocation
// plus a borrowed-engine Context: hundreds of concurrent epochs
// (dynamic and replay) interleave on the same workers.
//
// Per-World isolation rides the tenant tag on every task
// (TaskBase::tenant): termination detection is the tenant's pending
// counter, failures/aborts cancel only that tenant's tasks, and
// priority classes bias the LLP scheduler per World. The Runtime adds
// the cross-cutting services:
//
//  * Admission control — RuntimeOptions::max_inflight_worlds bounds the
//    epochs in flight; overload either sheds (Outcome::kShed) or queues
//    submitters in FIFO order (AdmissionPolicy).
//  * Deadlines — WorldOptions::deadline_ms arms a monitor that aborts
//    an overdue epoch through the PR 5 fault path.
//  * Stall watchdog — the multi-sample mode distinguishes one quiet
//    World (its graph is stuck while siblings progress) from a quiet
//    engine.
//
// The classic `World(config)` constructor is a thin compatibility shim
// over a private single-tenant Runtime, so every existing call site
// keeps working; see DESIGN.md §1.1c.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/config.hpp"
#include "runtime/context.hpp"
#include "runtime/tenant.hpp"
#include "runtime/watchdog.hpp"

namespace ttg {

class World;

struct RuntimeOptions {
  Config config = Config::optimized();
  /// Bound on concurrently admitted epochs across all Worlds of this
  /// Runtime; <= 0 disables admission control.
  int max_inflight_worlds = 0;
  /// What happens to an epoch that would exceed the bound.
  AdmissionPolicy admission = AdmissionPolicy::kQueue;
  /// Diagnostic name (stall reports).
  std::string name = "runtime";
};

class Runtime {
 public:
  explicit Runtime(RuntimeOptions options = {});
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;
  /// All Worlds minted by make_world() must be destroyed first.
  ~Runtime();

  /// Mints a lightweight tenant World on this Runtime's engine.
  std::unique_ptr<World> make_world(WorldOptions options = {});

  const Config& config() const { return config_; }
  const std::string& name() const { return name_; }
  Context& context() { return *context_; }
  ExecutionEngine& engine() { return context_->engine(); }
  int num_threads() const { return context_->num_threads(); }

  /// Tasks executed by the shared workers since construction (all
  /// tenants plus any classic traffic on the same engine).
  std::uint64_t total_tasks_executed() const {
    return context_->total_tasks_executed();
  }

  /// Approximate externally submitted tasks not yet drained by workers
  /// — the overload signal admission rides on.
  std::int64_t external_backlog() const {
    return context_->engine().scheduler().external_backlog();
  }

  /// Admission diagnostics. inflight_epochs counts admitted, not-yet-
  /// completed epochs; epochs_shed counts kShed rejections.
  int admission_limit() const { return gate_ ? gate_->limit() : 0; }
  int inflight_epochs() const { return gate_ ? gate_->inflight() : 0; }
  std::uint64_t epochs_shed() const { return gate_ ? gate_->shed() : 0; }

  /// Tenant Worlds currently alive on this Runtime.
  int live_worlds() const;

  /// Diagnostics: engine state plus one line per live tenant World.
  std::string stall_report() const;

 private:
  friend class World;

  /// Classic-World shim: wraps a caller-owned detector/fault into a
  /// single Context, exactly as the pre-Runtime World built it. No
  /// admission, no deadline monitor, no multi-tenant watchdog (the
  /// classic World keeps its own single-sample watchdog).
  Runtime(const Config& config, TerminationDetector* detector,
          FaultState* fault);

  /// Epoch admission (World::execute). Returns false only under kShed
  /// when the gate is full; under kQueue it blocks in FIFO order.
  bool admit();
  void release_admission();

  std::uint64_t allocate_world_id();
  void register_world(std::uint64_t id, World* world);
  void unregister_world(std::uint64_t id);

  void register_deadline(TenantState* tenant,
                         std::chrono::steady_clock::time_point at);
  void cancel_deadline(TenantState* tenant);
  void deadline_main();

  StallWatchdog::MultiSample sample_tenants();
  void on_tenant_stall(const std::vector<std::uint64_t>& ids,
                       bool engine_quiet);

  Config config_;
  std::string name_;
  const bool shim_;
  std::unique_ptr<Context> context_;
  std::unique_ptr<AdmissionGate> gate_;

  // Recursive: the watchdog fires a World's stall handler while holding
  // the registry lock (keeping the World alive), and the handler's
  // report re-enters stall_report().
  mutable std::recursive_mutex worlds_mutex_;
  std::unordered_map<std::uint64_t, World*> worlds_;  // guarded
  std::atomic<std::uint64_t> next_world_id_{1};

  struct Deadline {
    TenantState* tenant;
    std::chrono::steady_clock::time_point at;
  };
  std::mutex deadline_mutex_;
  std::condition_variable deadline_cv_;
  std::vector<Deadline> deadlines_;  // guarded by deadline_mutex_
  bool deadline_stop_ = false;       // guarded by deadline_mutex_
  std::thread deadline_thread_;

  // Last: destroyed first, while the engine it samples is still alive.
  std::unique_ptr<StallWatchdog> watchdog_;
};

}  // namespace ttg
