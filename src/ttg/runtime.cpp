#include "ttg/runtime.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>
#include <utility>

#include "ttg/world.hpp"

namespace ttg {

Runtime::Runtime(RuntimeOptions options)
    : config_(options.config),
      name_(std::move(options.name)),
      shim_(false) {
  config_.apply_globals();
  // The self-contained Context owns the engine, a detector the shared
  // workers attach to (never fenced in serving mode — tenant epochs
  // complete on their own pending counters) and a never-cancelled
  // engine-wide FaultState for untagged traffic.
  context_ = std::make_unique<Context>(config_);
  if (options.max_inflight_worlds > 0) {
    gate_ = std::make_unique<AdmissionGate>(options.max_inflight_worlds,
                                            options.admission);
  }
  deadline_thread_ = std::thread([this] { deadline_main(); });
  if (config_.watchdog_quiet_ms > 0) {
    watchdog_ = std::make_unique<StallWatchdog>(
        config_.watchdog_quiet_ms,
        StallWatchdog::MultiSampler([this] { return sample_tenants(); }),
        StallWatchdog::MultiStallHandler(
            [this](const std::vector<std::uint64_t>& ids,
                   bool engine_quiet) {
              on_tenant_stall(ids, engine_quiet);
            }));
    // Armed for the Runtime's lifetime: serving has no fence bracket to
    // arm/disarm around, and an idle engine samples as not-live anyway.
    watchdog_->arm();
  }
}

Runtime::Runtime(const Config& config, TerminationDetector* detector,
                 FaultState* fault)
    : config_(config), name_("world"), shim_(true) {
  context_ = std::make_unique<Context>(config_, detector, /*rank=*/0,
                                       fault);
}

Runtime::~Runtime() {
  watchdog_.reset();
  if (deadline_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(deadline_mutex_);
      deadline_stop_ = true;
    }
    deadline_cv_.notify_all();
    deadline_thread_.join();
  }
  {
    std::lock_guard<std::recursive_mutex> lock(worlds_mutex_);
    if (!worlds_.empty()) {
      std::fprintf(stderr,
                   "ttg: Runtime '%s' destroyed with %zu live tenant "
                   "World(s) — destroy Worlds before their Runtime\n",
                   name_.c_str(), worlds_.size());
    }
  }
}

std::unique_ptr<World> Runtime::make_world(WorldOptions options) {
  assert(!shim_ &&
         "make_world() on a classic World's private shim runtime");
  return std::unique_ptr<World>(new World(*this, std::move(options)));
}

bool Runtime::admit() {
  if (gate_ == nullptr) return true;
  if (gate_->policy() == AdmissionPolicy::kShed) {
    return gate_->try_admit();
  }
  gate_->admit([] { std::this_thread::yield(); });
  return true;
}

void Runtime::release_admission() {
  if (gate_ != nullptr) gate_->release();
}

std::uint64_t Runtime::allocate_world_id() {
  return next_world_id_.fetch_add(1, std::memory_order_relaxed);
}

void Runtime::register_world(std::uint64_t id, World* world) {
  std::lock_guard<std::recursive_mutex> lock(worlds_mutex_);
  worlds_.emplace(id, world);
}

void Runtime::unregister_world(std::uint64_t id) {
  std::lock_guard<std::recursive_mutex> lock(worlds_mutex_);
  worlds_.erase(id);
}

int Runtime::live_worlds() const {
  std::lock_guard<std::recursive_mutex> lock(worlds_mutex_);
  return static_cast<int>(worlds_.size());
}

void Runtime::register_deadline(TenantState* tenant,
                                std::chrono::steady_clock::time_point at) {
  {
    std::lock_guard<std::mutex> lock(deadline_mutex_);
    deadlines_.push_back(Deadline{tenant, at});
  }
  deadline_cv_.notify_all();
}

void Runtime::cancel_deadline(TenantState* tenant) {
  std::lock_guard<std::mutex> lock(deadline_mutex_);
  deadlines_.erase(
      std::remove_if(deadlines_.begin(), deadlines_.end(),
                     [tenant](const Deadline& d) {
                       return d.tenant == tenant;
                     }),
      deadlines_.end());
}

void Runtime::deadline_main() {
  std::unique_lock<std::mutex> lock(deadline_mutex_);
  while (!deadline_stop_) {
    if (deadlines_.empty()) {
      deadline_cv_.wait(lock, [this] {
        return deadline_stop_ || !deadlines_.empty();
      });
      continue;
    }
    auto next = deadlines_.front().at;
    for (const Deadline& d : deadlines_) next = std::min(next, d.at);
    deadline_cv_.wait_until(lock, next);
    if (deadline_stop_) break;
    const auto now = std::chrono::steady_clock::now();
    for (auto it = deadlines_.begin(); it != deadlines_.end();) {
      if (it->at > now) {
        ++it;
        continue;
      }
      // Fire while holding the lock: cancel_deadline() (World::wait
      // teardown, ~World) then serializes against the firing, so the
      // TenantState cannot be freed under us. Both callees only take
      // short leaf locks.
      TenantState* tenant = it->tenant;
      it = deadlines_.erase(it);
      if (tenant->fault.request_abort(
              "deadline: epoch exceeded its deadline_ms budget")) {
        context_->notify_work();
      }
      tenant->notify();
    }
  }
}

StallWatchdog::MultiSample Runtime::sample_tenants() {
  StallWatchdog::MultiSample s;
  ExecutionEngine& e = context_->engine();
  s.engine_progress =
      e.total_tasks_executed() + e.failed_tasks() + e.cancelled_tasks();
  std::lock_guard<std::recursive_mutex> lock(worlds_mutex_);
  s.tenants.reserve(worlds_.size());
  for (const auto& [id, world] : worlds_) {
    if (!world->epoch_open()) continue;
    const TenantState* t = world->tenant();
    s.tenants.push_back(StallWatchdog::TenantSample{
        id, t->retired(), t->pending() > 0});
  }
  return s;
}

void Runtime::on_tenant_stall(const std::vector<std::uint64_t>& ids,
                              bool engine_quiet) {
  // Holding worlds_mutex_ keeps the World alive for the callback;
  // stall handlers must not create or destroy Worlds on this Runtime.
  std::lock_guard<std::recursive_mutex> lock(worlds_mutex_);
  for (std::uint64_t id : ids) {
    auto it = worlds_.find(id);
    if (it != worlds_.end()) it->second->on_stall(engine_quiet);
  }
}

std::string Runtime::stall_report() const {
  std::ostringstream os;
  ExecutionEngine& e = context_->engine();
  os << "=== runtime '" << name_ << "' ===\n";
  os << "config: " << config_.describe() << "\n";
  os << "engine: executed=" << e.total_tasks_executed()
     << " failed=" << e.failed_tasks()
     << " cancelled=" << e.cancelled_tasks()
     << " parked=" << e.parked_workers() << "/" << e.num_threads()
     << " external_backlog=" << external_backlog() << "\n";
  if (gate_ != nullptr) {
    os << "admission: inflight=" << gate_->inflight() << "/"
       << gate_->limit() << " shed=" << gate_->shed() << "\n";
  }
  std::lock_guard<std::recursive_mutex> lock(worlds_mutex_);
  for (const auto& [id, world] : worlds_) {
    const TenantState* t = world->tenant();
    os << "world " << id;
    if (!world->name().empty()) os << " '" << world->name() << "'";
    os << ": open=" << (world->epoch_open() ? "yes" : "no")
       << " pending=" << t->pending() << " retired=" << t->retired()
       << " failed=" << t->failed() << " cancelled=" << t->cancelled()
       << "\n";
  }
  return os.str();
}

}  // namespace ttg
