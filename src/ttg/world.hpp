// World: the execution environment of a template task graph.
//
// A World bundles one termination detector and one or more Contexts —
// one per *simulated rank*. Shared-memory runs (everything in the
// paper's evaluation) use a single rank; the multi-rank mode partitions
// keys across ranks via each TT's keymap and moves data between ranks
// through per-rank active-message queues, exercising the same
// communication accounting (messages sent/received) that feeds the
// four-counter termination wave in distributed TTG.
//
// Substitution note (see DESIGN.md): real TTG sends serialized data over
// MPI between processes; here a cross-rank send deep-copies the value
// into a message delivered by a worker of the target rank. The control
// flow, copy semantics and termination protocol match; the wire is a
// queue instead of a NIC.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "runtime/context.hpp"
#include "structures/fifo.hpp"
#include "termdet/termdet.hpp"

namespace ttg {

class World {
 public:
  /// Creates a world with `nranks` simulated ranks, each owning a worker
  /// pool configured by `config` (config.threads() workers per rank).
  explicit World(const Config& config, int nranks = 1);
  World(const World&) = delete;
  World& operator=(const World&) = delete;
  ~World();

  int num_ranks() const { return nranks_; }
  Context& context(int rank = 0) { return *contexts_[rank]; }
  TerminationDetector& detector() { return *detector_; }
  const Config& config() const { return config_; }

  /// Rank of the calling thread: its worker's rank, or 0 for external
  /// threads (the application thread acts as rank 0's producer).
  int current_rank() const;

  /// Starts (or resumes after fence) an execution epoch.
  void execute();

  /// Blocks until all discovered tasks on all ranks have executed and no
  /// messages are in flight.
  void fence();

  /// Posts an active message to `target_rank`; a worker of that rank
  /// will invoke `deliver`. Accounts one message sent on the calling
  /// thread's rank and one received on the target.
  void post_message(int target_rank, std::function<void()> deliver);

  /// Total tasks executed across all ranks.
  std::uint64_t total_tasks_executed() const;

  /// Messages delivered so far (diagnostics).
  std::uint64_t messages_delivered() const {
    return messages_delivered_.load(std::memory_order_relaxed);
  }

 private:
  struct Message : LifoNode {
    std::function<void()> deliver;
  };

  /// Per-rank active-message queue, drained by that rank's workers.
  class MessageQueue final : public Context::ProgressSource {
   public:
    explicit MessageQueue(World* world) : world_(world) {}
    bool empty() override { return queue_.empty(); }
    void drain(Worker& worker) override;
    void push(Message* m) { queue_.push(m); }

   private:
    World* world_;
    LockedFifo queue_{AtomicOpCategory::kOther};
  };

  Config config_;
  int nranks_;
  std::unique_ptr<TerminationDetector> detector_;
  std::vector<std::unique_ptr<MessageQueue>> queues_;
  std::vector<std::unique_ptr<Context>> contexts_;
  std::atomic<std::uint64_t> messages_delivered_{0};
  bool epoch_open_ = false;
  bool needs_reset_ = false;
};

}  // namespace ttg
