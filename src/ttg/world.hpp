// World: the execution environment of a template task graph.
//
// A World bundles one termination detector and one or more Contexts —
// one per *simulated rank*. Shared-memory runs (everything in the
// paper's evaluation) use a single rank; the multi-rank mode partitions
// keys across ranks via each TT's keymap and moves data between ranks
// through per-rank active-message queues, exercising the same
// communication accounting (messages sent/received) that feeds the
// four-counter termination wave in distributed TTG.
//
// Two ownership shapes (DESIGN.md §1.1c, docs/serving.md):
//
//  * Classic (public constructor): the World owns its engine. A
//    single-rank World is a thin compatibility shim over a private
//    single-tenant Runtime; multi-rank Worlds own one Context per rank
//    directly. Termination runs on the four-counter wave.
//  * Tenant (Runtime::make_world): the World borrows a shared Runtime's
//    engine. Its tasks are tagged with a TenantState, termination is the
//    tenant's pending counter, and faults/aborts/deadlines are scoped to
//    this World only — hundreds of tenant Worlds interleave on the same
//    workers.
//
// Transports (docs/distributed.md): cross-rank sends travel as opaque
// frames over a comm::Communicator. The classic multi-rank World uses
// the in-process loopback fabric (a post() invokes the target rank's
// handler synchronously and the frame lands in its active-message
// queue); the *distributed* constructor takes a real transport (TCP,
// src/comm/tcp.hpp) instead — one process per rank, termination via the
// token-ring wave (comm/term_wave.hpp), peer loss surfacing as an
// aborted epoch. Values whose types have a comm::Serde specialization
// are serialized; in-process worlds additionally accept any copyable
// type through the legacy closure path.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <cstddef>

#include "runtime/context.hpp"
#include "runtime/coroutine.hpp"
#include "runtime/fault.hpp"
#include "runtime/tenant.hpp"
#include "runtime/watchdog.hpp"
#include "structures/fifo.hpp"
#include "termdet/termdet.hpp"
#include "ttg/graph_template.hpp"

namespace ttg {

namespace comm {
class Communicator;
class LoopbackFabric;
class TermWave;
class WireWriter;
}  // namespace comm

class Runtime;
class TTBase;
class World;

/// World-level protocol inside transport frames (first payload byte,
/// followed by the u64 epoch; see docs/distributed.md). Only kDelivery
/// frames count in the termination wave's sent/received totals.
enum class WireKind : std::uint8_t {
  kDelivery = 0,   ///< u32 node id, u16 input, Serde key [+ value]
  kTermToken = 1,  ///< u32 round, i64 sent, i64 received
  kAnnounce = 2,   ///< root -> all: termination is global
  kAbort = 3,      ///< any -> all: Serde<string> reason
};

/// Handle to one execution epoch, returned by World::execute() and
/// World::execute_replay(). Unifies the old wait()/fence()/status()
/// trio: wait() blocks and returns the epoch's Status, done() polls,
/// rethrow() waits then rethrows the captured failure (or WorldAborted).
///
/// A Submission is a value (World pointer + epoch sequence number) and
/// stays answerable after the epoch completed — even after the World
/// started its next epoch, in which case it reports the most recently
/// completed status. It must not outlive its World.
///
/// Cross-thread protocol (serving collectors): the seeding thread calls
/// World::seal_seeds() when it is done submitting, after which any
/// thread may wait() on the handle. Calling wait() from a non-seeding
/// thread *before* the seeder sealed is a race (wait() would seal an
/// epoch that is still being seeded).
class Submission {
 public:
  Submission() = default;

  bool valid() const { return world_ != nullptr; }

  /// True once the epoch drained (all discovered tasks retired). Cheap
  /// poll; never blocks.
  bool done() const;

  /// Blocks until the epoch completes and returns its final Status.
  /// Idempotent; from the seeding thread it behaves like World::wait().
  Status wait();

  /// Non-blocking snapshot: the final Status once completed, the
  /// in-flight fault state otherwise.
  Status status() const;

  /// True when the epoch is (or ended) cancelled: failed, aborted,
  /// deadline-expired or shed.
  bool cancelled() const { return !status().ok(); }

  /// wait(), then rethrows the captured task exception (kFailed) or
  /// throws WorldAborted (kAborted/kShed); returns on kOk.
  void rethrow();

 private:
  friend class World;
  Submission(World* world, std::uint64_t seq) : world_(world), seq_(seq) {}

  World* world_ = nullptr;
  std::uint64_t seq_ = 0;
};

class World {
 public:
  /// Creates a classic world with `nranks` simulated ranks, each owning
  /// a worker pool configured by `config` (config.threads() workers per
  /// rank). Single-rank worlds are a compatibility shim over a private
  /// single-tenant Runtime (see the file comment).
  explicit World(const Config& config, int nranks = 1);

  /// Distributed mode: one process per rank, connected by `comm` (e.g.
  /// comm::TcpCommunicator). num_ranks() is comm->size() but only the
  /// local rank's Context exists in this process; every TT must be
  /// constructed identically on every rank (SPMD) so the dense node ids
  /// assigned by registration order agree across processes. Cross-rank
  /// values need a comm::Serde specialization. Termination runs on the
  /// token-ring wave; losing a peer mid-epoch aborts the epoch, after
  /// which the World is unusable (docs/distributed.md).
  World(const Config& config, std::shared_ptr<comm::Communicator> comm);

  World(const World&) = delete;
  World& operator=(const World&) = delete;
  ~World();

  int num_ranks() const { return nranks_; }
  /// The Context hosting `rank`. Worlds with one local context (single
  /// rank, tenant, distributed) return it for any rank argument, so
  /// `context(world.current_rank())` is valid everywhere.
  Context& context(int rank = 0) {
    return contexts_.size() == 1 ? *contexts_[0]
                                 : *contexts_[static_cast<std::size_t>(rank)];
  }
  TerminationDetector& detector() {
    return detector_ != nullptr ? *detector_ : contexts_[0]->detector();
  }
  const Config& config() const { return config_; }

  /// The shared Runtime this tenant World runs on; null for classic
  /// worlds (whose private shim runtime is an implementation detail).
  Runtime* runtime() const { return runtime_; }
  /// Tenant accounting block, or null for classic worlds.
  TenantState* tenant() const { return tenant_.get(); }
  /// Stable id for diagnostics (0 for classic worlds).
  std::uint64_t id() const { return world_id_; }
  const std::string& name() const { return options_.name; }
  /// Priority added to every task of this World (tenant priority
  /// classes; 0 for classic worlds).
  std::int32_t priority_boost() const {
    return tenant_ != nullptr ? tenant_->priority_boost : 0;
  }
  /// True while an epoch is between execute() and wait()-completion.
  bool epoch_open() const {
    return epoch_open_.load(std::memory_order_acquire);
  }

  /// Rank of the calling thread: its worker's rank, or — for external
  /// threads — the local process rank (distributed worlds) or 0 (the
  /// application thread acts as rank 0's producer).
  int current_rank() const;

  /// True when this World spans processes over a real transport.
  bool distributed() const { return comm_ != nullptr; }
  /// The transport (distributed worlds; null otherwise).
  comm::Communicator* communicator() const { return comm_.get(); }

  /// Starts (or resumes after fence) an execution epoch. Clears the
  /// previous epoch's fault state (read status() before this). On a
  /// tenant World this is also the admission point: under kShed policy
  /// an over-limit epoch is rejected immediately (the handle completes
  /// with Outcome::kShed and seeds are dropped at ingress); under
  /// kQueue the call blocks in FIFO order until a slot frees.
  Submission execute();

  /// Blocks until all discovered tasks on all ranks have executed (or
  /// were dropped as cancelled completions) and no messages are in
  /// flight, then reports how the epoch ended. On failure/abort the
  /// captured exception is rethrowable via rethrow().
  /// \deprecated Prefer the Submission handle: `auto s = world.execute();
  /// ... ; s.wait();` — kept as a shim for existing call sites.
  Status wait();

  /// Blocks until all discovered tasks on all ranks have executed and no
  /// messages are in flight. Equivalent to (void)wait().
  /// \deprecated Prefer Submission::wait(); kept as a shim.
  void fence() { (void)wait(); }

  /// Marks the end of seeding for the current epoch from the seeding
  /// thread: flushes batched replay seeds, validates replay seed counts,
  /// and (tenant worlds) seals the tenant so the epoch can complete.
  /// wait() calls this implicitly when the seeder and waiter are the
  /// same thread; cross-thread waiters need the seeder to call it
  /// explicitly (see Submission).
  void seal_seeds();

  // --- Record-and-replay epochs (see ttg/graph_template.hpp and
  // docs/replay.md). -------------------------------------------------

  /// How the current epoch executes. Workers read this on every arrival
  /// (relaxed load; visibility rides the scheduler's publish chain — the
  /// mode only changes while the world is quiescent).
  EpochMode epoch_mode() const {
    return epoch_mode_.load(std::memory_order_relaxed);
  }

  /// Starts a *recording* epoch: a normal dynamic epoch whose task
  /// instantiations and deliveries are captured. Seed the graph from the
  /// calling thread only, fence(), then end_recording(). Single-rank
  /// worlds only.
  void begin_recording();

  /// Freezes the capture of the last recording epoch into an immutable
  /// GraphTemplate. Call after the recording epoch fenced; returns
  /// nullptr if that epoch failed or was aborted.
  std::shared_ptr<GraphTemplate> end_recording();

  /// Starts a *replay* epoch on `instance` (instantiating it on first
  /// use): all template slots are discovered up front in one bulk
  /// counter update, readiness runs on plain join counters, and the
  /// pending hash tables are never touched. Repeat the recorded seeds
  /// from the calling thread, then wait on the returned handle. The
  /// instance is re-armed on every call, so the same instance replays
  /// any number of epochs.
  Submission execute_replay(ReplayInstance& instance);

  /// The recorder of the active recording epoch (null otherwise).
  GraphRecorder* recorder() { return recorder_.get(); }

  /// The instance of the active replay epoch (null otherwise).
  ReplayInstance* replay_instance() { return replay_instance_; }

  /// Batches an externally fired replay source task for bulk injection;
  /// flushes a priority-sorted chain to the scheduler every
  /// ExecutionEngine::kMaxBatch tasks (and at wait()).
  void enqueue_replay_ready(TaskBase* task);

  /// Requests a cooperative abort: running tasks finish, everything not
  /// yet started is dropped as a cancelled completion, and wait()
  /// returns Status{kAborted, reason}. Safe from any thread, including
  /// task bodies. Idempotent; a captured failure wins over an abort.
  /// On a tenant World only this World's tasks are cancelled — siblings
  /// on the same Runtime are untouched.
  void abort(std::string reason);

  /// True once the current epoch is cancelled (failure or abort). Task
  /// bodies can poll this to bail out of long loops early. One relaxed
  /// load.
  bool cancelled() const { return fault_->cancelled(); }

  /// Outcome of the current/last epoch (kOk while running healthy).
  Status status() const { return fault_->status(); }

  /// Rethrows the captured task exception (failed epochs), throws
  /// WorldAborted (aborted epochs), or returns (healthy).
  void rethrow() const { fault_->rethrow(); }

  FaultState& fault() { return *fault_; }

  /// Installs (or clears, with nullptr) a seeded fault-injection plan on
  /// every rank's engine (tenant worlds: on this tenant's tasks only);
  /// see FaultPlan. Install while quiescent.
  void set_fault_plan(const FaultPlan* plan);

  /// Replaces the stall-watchdog handler (default: write the stall
  /// report to stderr and abort the World). The handler receives the
  /// report; it runs on the watchdog thread. Classic worlds need
  /// Config::watchdog_quiet_ms > 0; tenant worlds are monitored by
  /// their Runtime's per-World watchdog under the same knob.
  void set_stall_handler(std::function<void(const std::string&)> handler);

  /// Diagnostics: a human-readable dump of scheduler/termdet/parking
  /// state (what the stall watchdog reports). Tenant worlds report
  /// their own counters plus the shared engine's state.
  std::string stall_report() const;

  /// TT registration for graph-wide bookkeeping (cancellation purge).
  /// Called from TT's constructor/destructor.
  void register_node(TTBase* node);
  void unregister_node(TTBase* node);

  /// Registry of coroutine rendezvous objects (ttg::InputGate) whose
  /// parked continuations the cancellation purge must claim when this
  /// World aborts (docs/coroutines.md). Gates register themselves on
  /// construction; the engine's timer wheel is swept separately.
  coro::CancelRegistry& coro_sources() { return coro_sources_; }

  /// Posts an active message to `target_rank`; a worker of that rank
  /// will invoke `deliver`. Accounts one message sent on the calling
  /// thread's rank and one received on the target. Tenant worlds are
  /// single-rank: the message is delivered inline.
  void post_message(int target_rank, std::function<void()> deliver);

  // --- Wire plane (TT's serialized cross-rank path; docs/
  // distributed.md). -------------------------------------------------

  /// Writes the kDelivery frame header (kind, epoch, node id, input)
  /// into `w`; the sender appends the Serde-packed key and value.
  void wire_delivery_header(comm::WireWriter& w, std::uint32_t node_id,
                            std::uint16_t input);

  /// Posts a complete wire frame to `target_rank` over the transport
  /// (distributed) or the loopback fabric (in-process multi-rank).
  /// Accounts one message sent on the calling thread's rank.
  void post_wire(int target_rank, std::vector<std::byte> frame);

  /// Dense-id lookup for wire deliveries; null if the id is unknown or
  /// its TT was destroyed.
  TTBase* node_by_comm_id(std::uint32_t id) const;

  /// Total tasks executed across all ranks (tenant worlds: this World's
  /// tasks only, not the shared engine's total).
  std::uint64_t total_tasks_executed() const;

  /// Messages delivered so far (diagnostics).
  std::uint64_t messages_delivered() const {
    return messages_delivered_.load(std::memory_order_relaxed);
  }

 private:
  friend class Runtime;
  friend class Submission;

  /// Tenant mode: a lightweight World on `runtime`'s shared engine.
  World(Runtime& runtime, WorldOptions options);

  struct Message : LifoNode {
    std::function<void()> deliver;
  };

  /// Per-rank active-message queue, drained by that rank's workers.
  class MessageQueue final : public Context::ProgressSource {
   public:
    explicit MessageQueue(World* world) : world_(world) {}
    bool empty() override { return queue_.empty(); }
    void drain(Worker& worker) override;
    void push(Message* m) { queue_.push(m); }

   private:
    World* world_;
    LockedFifo queue_{AtomicOpCategory::kOther};
  };

  /// Discards pending records in every registered TT, accounting them
  /// as cancelled completions. Looped by wait() while cancelled: records
  /// can keep materializing from still-running producers until the wave
  /// (or the tenant's pending count) converges.
  void purge_cancelled();

  /// The wait bodies: the classic four-counter wave, the tenant
  /// pending-counter protocol, and the distributed token-ring wave. All
  /// return the epoch's final Status and leave the replay/recording mode
  /// reset.
  Status wait_classic(EpochMode mode);
  Status wait_tenant(EpochMode mode);
  Status wait_distributed(EpochMode mode);

  // --- Wire plane internals. -----------------------------------------

  /// Transport ingress: `local_index` is the receiving context's index
  /// (loopback: target rank; distributed: 0). Copies the frame, checks
  /// the epoch (distributed frames from a peer already in the next
  /// epoch are deferred, stale ones dropped) and dispatches.
  void on_wire_frame(int local_index, int source, const std::byte* data,
                     std::size_t n);
  void dispatch_wire(int local_index, int source, std::uint8_t kind,
                     std::vector<std::byte> frame);
  /// Peer-loss callback (transport progress thread): aborts the epoch.
  void on_peer_lost(int peer, const std::string& why);
  /// Sends a kAbort frame to every peer (best effort).
  void broadcast_abort(const std::string& reason);
  /// The local abort path (no re-broadcast): what abort() always did.
  void abort_local(std::string reason);
  /// Opens wave/epoch state for a distributed epoch and redispatches
  /// frames deferred from the previous one.
  void open_wire_epoch();

  /// Records the completed epoch's status for late Submission queries.
  void record_completion(const Status& st);

  // Submission backends.
  bool submission_done(std::uint64_t seq) const;
  Status submission_wait(std::uint64_t seq);
  Status submission_status(std::uint64_t seq) const;
  std::exception_ptr submission_error(std::uint64_t seq) const;

  /// Aggregate progress sample + handler wiring for the stall watchdog.
  std::uint64_t progress_counter() const;
  void on_stall(bool engine_quiet = true);

  /// Submits the pending externally-fired replay chain (if any).
  void flush_replay_ready();

  Config config_;
  int nranks_;
  std::unique_ptr<TerminationDetector> detector_;  // classic only
  FaultState own_fault_;  // before contexts: engines borrow it (classic)
  FaultState* fault_ = &own_fault_;  // tenant: &tenant_->fault
  Runtime* runtime_ = nullptr;       // tenant: the shared runtime
  std::unique_ptr<TenantState> tenant_;
  WorldOptions options_;
  std::uint64_t world_id_ = 0;
  bool admitted_ = false;  // holds one AdmissionGate slot

  std::vector<std::unique_ptr<MessageQueue>> queues_;  // classic only
  /// Classic single-rank worlds run on this private single-tenant
  /// runtime (the compatibility shim); its Context appears in
  /// `contexts_` like any other.
  std::unique_ptr<Runtime> private_runtime_;
  std::vector<std::unique_ptr<Context>> owned_contexts_;
  /// The uniform view everything else indexes (one per rank; tenant
  /// worlds have exactly one, borrowing the shared engine).
  std::vector<Context*> contexts_;
  std::atomic<std::uint64_t> messages_delivered_{0};
  std::atomic<bool> epoch_open_{false};
  bool needs_reset_ = false;
  std::atomic<bool> seeds_sealed_{false};

  std::atomic<std::uint64_t> epoch_seq_{0};
  mutable std::mutex status_mutex_;
  std::uint64_t completed_seq_ = 0;   // guarded by status_mutex_
  Status last_status_;                // guarded by status_mutex_
  std::exception_ptr last_error_;     // guarded by status_mutex_

  std::atomic<EpochMode> epoch_mode_{EpochMode::kDynamic};
  std::unique_ptr<GraphRecorder> recorder_;
  ReplayInstance* replay_instance_ = nullptr;

  mutable std::mutex nodes_mutex_;
  std::vector<TTBase*> nodes_;  // guarded by nodes_mutex_
  /// Dense registration-order ids for wire deliveries (slot nulled on
  /// unregister, never reused within a World). Guarded by nodes_mutex_.
  std::vector<TTBase*> nodes_by_id_;
  coro::CancelRegistry coro_sources_;

  // --- Wire plane state. ---------------------------------------------
  std::shared_ptr<comm::Communicator> comm_;      // distributed only
  std::unique_ptr<comm::LoopbackFabric> fabric_;  // classic multi-rank
  int comm_rank_ = 0;  // local process rank (distributed; else 0)
  std::unique_ptr<comm::TermWave> wave_;  // distributed; per-epoch
  std::atomic<std::uint64_t> comm_epoch_{0};
  /// Set when a distributed epoch failed (peer loss / abort / local
  /// drain): all further ingress is dropped and the World refuses new
  /// epochs.
  std::atomic<bool> comm_failed_{false};
  struct DeferredFrame {
    int local_index;
    int source;
    std::uint64_t epoch;
    std::vector<std::byte> bytes;
  };
  mutable std::mutex comm_mutex_;  // epoch gate + deferred_ + wave_ use
  std::vector<DeferredFrame> deferred_frames_;  // guarded by comm_mutex_

  std::mutex stall_mutex_;
  std::function<void(const std::string&)> stall_handler_;  // guarded
  // Declared last (destroyed first in ~World before the explicit
  // teardown): the monitor samples contexts and the detector.
  std::unique_ptr<StallWatchdog> watchdog_;
};

inline bool Submission::done() const {
  return world_ != nullptr && world_->submission_done(seq_);
}
inline Status Submission::wait() {
  return world_ != nullptr ? world_->submission_wait(seq_) : Status{};
}
inline Status Submission::status() const {
  return world_ != nullptr ? world_->submission_status(seq_) : Status{};
}
inline void Submission::rethrow() {
  const Status st = wait();
  if (st.ok()) return;
  if (std::exception_ptr ep = world_->submission_error(seq_); ep) {
    std::rethrow_exception(ep);
  }
  throw WorldAborted(st.reason);
}

}  // namespace ttg
