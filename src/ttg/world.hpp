// World: the execution environment of a template task graph.
//
// A World bundles one termination detector and one or more Contexts —
// one per *simulated rank*. Shared-memory runs (everything in the
// paper's evaluation) use a single rank; the multi-rank mode partitions
// keys across ranks via each TT's keymap and moves data between ranks
// through per-rank active-message queues, exercising the same
// communication accounting (messages sent/received) that feeds the
// four-counter termination wave in distributed TTG.
//
// Substitution note (see DESIGN.md): real TTG sends serialized data over
// MPI between processes; here a cross-rank send deep-copies the value
// into a message delivered by a worker of the target rank. The control
// flow, copy semantics and termination protocol match; the wire is a
// queue instead of a NIC.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/context.hpp"
#include "runtime/fault.hpp"
#include "runtime/watchdog.hpp"
#include "structures/fifo.hpp"
#include "termdet/termdet.hpp"
#include "ttg/graph_template.hpp"

namespace ttg {

class TTBase;

class World {
 public:
  /// Creates a world with `nranks` simulated ranks, each owning a worker
  /// pool configured by `config` (config.threads() workers per rank).
  explicit World(const Config& config, int nranks = 1);
  World(const World&) = delete;
  World& operator=(const World&) = delete;
  ~World();

  int num_ranks() const { return nranks_; }
  Context& context(int rank = 0) { return *contexts_[rank]; }
  TerminationDetector& detector() { return *detector_; }
  const Config& config() const { return config_; }

  /// Rank of the calling thread: its worker's rank, or 0 for external
  /// threads (the application thread acts as rank 0's producer).
  int current_rank() const;

  /// Starts (or resumes after fence) an execution epoch. Clears the
  /// previous epoch's fault state (read status() before this).
  void execute();

  /// Blocks until all discovered tasks on all ranks have executed (or
  /// were dropped as cancelled completions) and no messages are in
  /// flight, then reports how the epoch ended. On failure/abort the
  /// captured exception is rethrowable via rethrow().
  Status wait();

  /// Blocks until all discovered tasks on all ranks have executed and no
  /// messages are in flight. Equivalent to (void)wait() — inspect
  /// status() afterwards if the run may have failed.
  void fence() { (void)wait(); }

  // --- Record-and-replay epochs (see ttg/graph_template.hpp and
  // docs/replay.md). -------------------------------------------------

  /// How the current epoch executes. Workers read this on every arrival
  /// (relaxed load; visibility rides the scheduler's publish chain — the
  /// mode only changes while the world is quiescent).
  EpochMode epoch_mode() const {
    return epoch_mode_.load(std::memory_order_relaxed);
  }

  /// Starts a *recording* epoch: a normal dynamic epoch whose task
  /// instantiations and deliveries are captured. Seed the graph from the
  /// calling thread only, fence(), then end_recording(). Single-rank
  /// worlds only.
  void begin_recording();

  /// Freezes the capture of the last recording epoch into an immutable
  /// GraphTemplate. Call after the recording epoch fenced; returns
  /// nullptr if that epoch failed or was aborted.
  std::shared_ptr<GraphTemplate> end_recording();

  /// Starts a *replay* epoch on `instance` (instantiating it on first
  /// use): all template slots are discovered up front in one bulk
  /// counter update, readiness runs on plain join counters, and the
  /// pending hash tables are never touched. Repeat the recorded seeds
  /// from the calling thread, then wait()/fence(). The instance is
  /// re-armed on every call, so the same instance replays any number of
  /// epochs.
  void execute_replay(ReplayInstance& instance);

  /// The recorder of the active recording epoch (null otherwise).
  GraphRecorder* recorder() { return recorder_.get(); }

  /// The instance of the active replay epoch (null otherwise).
  ReplayInstance* replay_instance() { return replay_instance_; }

  /// Batches an externally fired replay source task for bulk injection;
  /// flushes a priority-sorted chain to the scheduler every
  /// ExecutionEngine::kMaxBatch tasks (and at wait()).
  void enqueue_replay_ready(TaskBase* task);

  /// Requests a cooperative abort: running tasks finish, everything not
  /// yet started is dropped as a cancelled completion, and wait()
  /// returns Status{kAborted, reason}. Safe from any thread, including
  /// task bodies. Idempotent; a captured failure wins over an abort.
  void abort(std::string reason);

  /// True once the current epoch is cancelled (failure or abort). Task
  /// bodies can poll this to bail out of long loops early. One relaxed
  /// load.
  bool cancelled() const { return fault_.cancelled(); }

  /// Outcome of the current/last epoch (kOk while running healthy).
  Status status() const { return fault_.status(); }

  /// Rethrows the captured task exception (failed epochs), throws
  /// WorldAborted (aborted epochs), or returns (healthy).
  void rethrow() const { fault_.rethrow(); }

  FaultState& fault() { return fault_; }

  /// Installs (or clears, with nullptr) a seeded fault-injection plan on
  /// every rank's engine; see FaultPlan. Install while quiescent.
  void set_fault_plan(const FaultPlan* plan);

  /// Replaces the stall-watchdog handler (default: write the stall
  /// report to stderr and abort the World). The handler receives the
  /// report; it runs on the watchdog thread. Only meaningful when
  /// Config::watchdog_quiet_ms > 0.
  void set_stall_handler(std::function<void(const std::string&)> handler);

  /// Diagnostics: a human-readable dump of scheduler/termdet/parking
  /// state (what the stall watchdog reports).
  std::string stall_report() const;

  /// TT registration for graph-wide bookkeeping (cancellation purge).
  /// Called from TT's constructor/destructor.
  void register_node(TTBase* node);
  void unregister_node(TTBase* node);

  /// Posts an active message to `target_rank`; a worker of that rank
  /// will invoke `deliver`. Accounts one message sent on the calling
  /// thread's rank and one received on the target.
  void post_message(int target_rank, std::function<void()> deliver);

  /// Total tasks executed across all ranks.
  std::uint64_t total_tasks_executed() const;

  /// Messages delivered so far (diagnostics).
  std::uint64_t messages_delivered() const {
    return messages_delivered_.load(std::memory_order_relaxed);
  }

 private:
  struct Message : LifoNode {
    std::function<void()> deliver;
  };

  /// Per-rank active-message queue, drained by that rank's workers.
  class MessageQueue final : public Context::ProgressSource {
   public:
    explicit MessageQueue(World* world) : world_(world) {}
    bool empty() override { return queue_.empty(); }
    void drain(Worker& worker) override;
    void push(Message* m) { queue_.push(m); }

   private:
    World* world_;
    LockedFifo queue_{AtomicOpCategory::kOther};
  };

  /// Discards pending records in every registered TT, accounting them
  /// as cancelled completions. Looped by wait() while cancelled: records
  /// can keep materializing from still-running producers until the wave
  /// converges.
  void purge_cancelled();

  /// Aggregate progress sample + handler wiring for the stall watchdog.
  std::uint64_t progress_counter() const;
  void on_stall();

  /// Submits the pending externally-fired replay chain (if any).
  void flush_replay_ready();

  Config config_;
  int nranks_;
  std::unique_ptr<TerminationDetector> detector_;
  FaultState fault_;  // before contexts_: engines borrow it
  std::vector<std::unique_ptr<MessageQueue>> queues_;
  std::vector<std::unique_ptr<Context>> contexts_;
  std::atomic<std::uint64_t> messages_delivered_{0};
  bool epoch_open_ = false;
  bool needs_reset_ = false;

  std::atomic<EpochMode> epoch_mode_{EpochMode::kDynamic};
  std::unique_ptr<GraphRecorder> recorder_;
  ReplayInstance* replay_instance_ = nullptr;

  mutable std::mutex nodes_mutex_;
  std::vector<TTBase*> nodes_;  // guarded by nodes_mutex_

  std::mutex stall_mutex_;
  std::function<void(const std::string&)> stall_handler_;  // guarded
  // Declared last (destroyed first in ~World before the explicit
  // teardown): the monitor samples contexts and the detector.
  std::unique_ptr<StallWatchdog> watchdog_;
};

}  // namespace ttg
