#include "atomics/op_counter.hpp"

namespace ttg {

std::string_view to_string(AtomicOpCategory c) {
  switch (c) {
    case AtomicOpCategory::kMemPool: return "mempool";
    case AtomicOpCategory::kInputCount: return "input-count";
    case AtomicOpCategory::kRefCount: return "refcount";
    case AtomicOpCategory::kBucketLock: return "bucket-lock";
    case AtomicOpCategory::kScheduler: return "scheduler";
    case AtomicOpCategory::kRWLock: return "rwlock";
    case AtomicOpCategory::kTermDet: return "termdet";
    case AtomicOpCategory::kCopyPoolHit: return "copy-pool-hit";
    case AtomicOpCategory::kCopyPoolMiss: return "copy-pool-miss";
    case AtomicOpCategory::kSuspend: return "suspend";
    case AtomicOpCategory::kOther: return "other";
    case AtomicOpCategory::kCount_: break;
  }
  return "?";
}

namespace atomic_ops {

namespace detail {
ThreadCounters g_counters[kMaxThreads];
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool enabled) {
  detail::g_enabled.store(enabled, std::memory_order_relaxed);
}

bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

AtomicOpSnapshot snapshot() {
  AtomicOpSnapshot s;
  const int n = this_thread::id_count();
  for (int t = 0; t < n; ++t) {
    for (std::size_t i = 0; i < kAtomicOpCategories; ++i) {
      s.counts[i] += detail::g_counters[t].counts[i];
    }
  }
  return s;
}

void reset() {
  const int n = this_thread::id_count();
  for (int t = 0; t < n; ++t) {
    detail::g_counters[t].counts.fill(0);
  }
}

}  // namespace atomic_ops
}  // namespace ttg
