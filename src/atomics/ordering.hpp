// Runtime-selectable atomic memory ordering (paper Sec. IV-A).
//
// The "original" runtime used sequentially-consistent atomics everywhere;
// one of the paper's optimizations is switching locks to acquire/release
// and everything else to relaxed (with explicit fences where acq/rel is
// genuinely needed). To let one binary run both the original and the
// optimized configuration (Fig. 9 ablation), every atomic in the runtime
// asks this module for its ordering instead of hard-coding it.
//
// The mode is read with a relaxed atomic load; on x86 that compiles to a
// plain load, so the indirection itself does not perturb the experiment.
#pragma once

#include <atomic>

namespace ttg {

enum class OrderingMode {
  kSeqCst,     ///< every atomic op uses memory_order_seq_cst ("original")
  kOptimized,  ///< acq/rel for locks, relaxed elsewhere (Sec. IV-A)
};

namespace detail {
inline std::atomic<OrderingMode> g_ordering{OrderingMode::kOptimized};
}  // namespace detail

inline void set_ordering_mode(OrderingMode m) {
  detail::g_ordering.store(m, std::memory_order_relaxed);
}

inline OrderingMode ordering_mode() {
  return detail::g_ordering.load(std::memory_order_relaxed);
}

/// Ordering for lock-acquire style RMW operations.
inline std::memory_order ord_acquire() {
  return ordering_mode() == OrderingMode::kSeqCst
             ? std::memory_order_seq_cst
             : std::memory_order_acquire;
}

/// Ordering for lock-release style stores. In the optimized mode this is
/// the key win on x86-TSO: a release store is a plain store.
inline std::memory_order ord_release() {
  return ordering_mode() == OrderingMode::kSeqCst
             ? std::memory_order_seq_cst
             : std::memory_order_release;
}

/// Ordering for counter-style RMWs that carry no synchronization.
inline std::memory_order ord_relaxed() {
  return ordering_mode() == OrderingMode::kSeqCst
             ? std::memory_order_seq_cst
             : std::memory_order_relaxed;
}

/// Ordering for RMWs that both acquire and release (CAS on list heads).
inline std::memory_order ord_acq_rel() {
  return ordering_mode() == OrderingMode::kSeqCst
             ? std::memory_order_seq_cst
             : std::memory_order_acq_rel;
}

/// Plain load / store orderings.
inline std::memory_order ord_load() {
  return ordering_mode() == OrderingMode::kSeqCst
             ? std::memory_order_seq_cst
             : std::memory_order_relaxed;
}
inline std::memory_order ord_store() {
  return ordering_mode() == OrderingMode::kSeqCst
             ? std::memory_order_seq_cst
             : std::memory_order_relaxed;
}

/// Explicit fences used where a relaxed RMW needs to publish or observe
/// data (Sec. IV-A: "we use acquire and release memory barriers using
/// atomic_thread_fence" for e.g. LIFO CAS loops).
inline void fence_acquire() { std::atomic_thread_fence(std::memory_order_acquire); }
inline void fence_release() { std::atomic_thread_fence(std::memory_order_release); }

}  // namespace ttg
