// Atomic-operation accounting (paper Sec. IV-E).
//
// The paper models the number of atomic RMW operations in the lifetime of
// a task as N_A = 4*N_i + 4 (Eq. 1): per input one input-counter update,
// two data-copy refcount updates and one hash-bucket lock; plus two
// mempool operations and two scheduler operations per task. To validate
// that model empirically (bench_eq1_atomic_model and the property tests),
// every atomic RMW in the runtime reports itself here, tagged with a
// category.
//
// Counting is per-thread and non-atomic (a thread only increments its own
// slot), so enabling it does not add contention; reading a snapshot sums
// over all registered threads.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>

#include "common/cache.hpp"
#include "common/thread_id.hpp"

namespace ttg {

enum class AtomicOpCategory : int {
  kMemPool = 0,     ///< free-list pool push/pop (N_OD)
  kInputCount,      ///< task input-satisfaction counter (N_ID)
  kRefCount,        ///< data-copy reference count retain/release (N_RC)
  kBucketLock,      ///< hash-table bucket lock acquire (N_HB)
  kScheduler,       ///< scheduler push/pop CAS (N_S)
  kRWLock,          ///< reader-writer lock (eliminated by BRAVO fast path)
  kTermDet,         ///< termination-detection counter updates
  /// Data-copy pool allocations served from the free list (the pop is
  /// additionally counted under kMemPool; this tracks the *outcome*).
  kCopyPoolHit,
  /// Data-copy pool allocations that missed the free list: a bump-chunk
  /// carve or an oversized heap fallback — the "at least one atomic
  /// operation in the underlying system allocator" Eq. (1) charges to
  /// copy creation.
  kCopyPoolMiss,
  /// Coroutine suspend/resume rendezvous RMWs (docs/coroutines.md): the
  /// park publication and the resume claim. A suspend/resume pair adds
  /// exactly 2 here plus 2 kScheduler for the continuation round-trip;
  /// tasks that never suspend never touch this category, keeping the
  /// Eq. (1) hot-path census unchanged.
  kSuspend,
  kOther,
  kCount_,
};

constexpr std::size_t kAtomicOpCategories =
    static_cast<std::size_t>(AtomicOpCategory::kCount_);

std::string_view to_string(AtomicOpCategory c);

/// One snapshot of counts summed over all threads.
struct AtomicOpSnapshot {
  std::array<std::uint64_t, kAtomicOpCategories> counts{};

  std::uint64_t operator[](AtomicOpCategory c) const {
    return counts[static_cast<std::size_t>(c)];
  }
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto v : counts) t += v;
    return t;
  }
  AtomicOpSnapshot operator-(const AtomicOpSnapshot& rhs) const {
    AtomicOpSnapshot d;
    for (std::size_t i = 0; i < kAtomicOpCategories; ++i)
      d.counts[i] = counts[i] - rhs.counts[i];
    return d;
  }
};

namespace atomic_ops {

/// Globally enables/disables accounting. Disabled by default; the counter
/// increment is guarded by one relaxed bool load.
void set_enabled(bool enabled);
bool enabled();

namespace detail {
struct alignas(kCacheLineSize) ThreadCounters {
  std::array<std::uint64_t, kAtomicOpCategories> counts{};
};
extern ThreadCounters g_counters[kMaxThreads];
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Records `n` atomic RMW operations of category `c` on this thread.
inline void count(AtomicOpCategory c, std::uint64_t n = 1) {
  if (!detail::g_enabled.load(std::memory_order_relaxed)) return;
  detail::g_counters[this_thread::id()]
      .counts[static_cast<std::size_t>(c)] += n;
}

/// Sums all threads' counters.
AtomicOpSnapshot snapshot();

/// Zeroes all threads' counters.
void reset();

}  // namespace atomic_ops
}  // namespace ttg
