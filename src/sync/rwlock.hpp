// Counter-based reader-writer spinlock.
//
// This is the "underlying reader-writer lock" that BRAVO (Sec. IV-D)
// wraps: readers atomically increment a shared counter, so under heavy
// read traffic it is exactly the contended atomic the paper wants to
// eliminate from the hash-table fast path.
#pragma once

#include <atomic>
#include <cstdint>

#include "atomics/op_counter.hpp"
#include "atomics/ordering.hpp"
#include "common/busy_wait.hpp"
#include "sim/hooks.hpp"

namespace ttg {

class RWSpinLock {
 public:
  RWSpinLock() = default;
  RWSpinLock(const RWSpinLock&) = delete;
  RWSpinLock& operator=(const RWSpinLock&) = delete;

  void read_lock() noexcept {
    Backoff backoff;
    for (;;) {
      std::int32_t s = state_.load(std::memory_order_relaxed);
      if (s >= 0) {
        atomic_ops::count(AtomicOpCategory::kRWLock);
        TTG_SIM_POINT("rwlock.read.cas");
        if (state_.compare_exchange_weak(s, s + 1, ord_acquire(),
                                         std::memory_order_relaxed)) {
          return;
        }
      }
      backoff.pause();
    }
  }

  bool try_read_lock() noexcept {
    std::int32_t s = state_.load(std::memory_order_relaxed);
    if (s < 0) return false;
    atomic_ops::count(AtomicOpCategory::kRWLock);
    return state_.compare_exchange_strong(s, s + 1, ord_acquire(),
                                          std::memory_order_relaxed);
  }

  void read_unlock() noexcept {
    atomic_ops::count(AtomicOpCategory::kRWLock);
    TTG_SIM_POINT("rwlock.read.unlock");
    state_.fetch_sub(1, ord_release());
  }

  void write_lock() noexcept {
    Backoff backoff;
    for (;;) {
      std::int32_t expected = 0;
      atomic_ops::count(AtomicOpCategory::kRWLock);
      TTG_SIM_POINT("rwlock.write.cas");
      if (state_.compare_exchange_weak(expected, kWriter, ord_acquire(),
                                       std::memory_order_relaxed)) {
        return;
      }
      backoff.pause();
    }
  }

  bool try_write_lock() noexcept {
    std::int32_t expected = 0;
    atomic_ops::count(AtomicOpCategory::kRWLock);
    return state_.compare_exchange_strong(expected, kWriter, ord_acquire(),
                                          std::memory_order_relaxed);
  }

  void write_unlock() noexcept {
    TTG_SIM_POINT("rwlock.write.unlock");
    state_.store(0, ord_release());
  }

  /// True if any reader or a writer currently holds the lock. Test hook.
  bool is_held() const noexcept {
    return state_.load(std::memory_order_relaxed) != 0;
  }

 private:
  static constexpr std::int32_t kWriter = -1;
  // >= 0: number of readers; kWriter: write-locked.
  std::atomic<std::int32_t> state_{0};
};

}  // namespace ttg
