// Single-word spinlock used for hash-table buckets (paper Sec. III-C2).
//
// PaRSEC locks individual buckets "using a simple atomic lock (e.g.,
// using atomic_flag in C11)". With the Sec. IV-A optimization the acquire
// uses memory_order_acquire (one atomic RMW) and the release is a plain
// store with release ordering (free on x86-TSO) — one RMW per
// lock/unlock cycle instead of two.
#pragma once

#include <atomic>
#include <cstdint>

#include "atomics/op_counter.hpp"
#include "atomics/ordering.hpp"
#include "common/busy_wait.hpp"
#include "sim/hooks.hpp"

namespace ttg {

class BucketLock {
 public:
  BucketLock() = default;
  BucketLock(const BucketLock&) = delete;
  BucketLock& operator=(const BucketLock&) = delete;

  void lock(AtomicOpCategory cat = AtomicOpCategory::kBucketLock) noexcept {
    Backoff backoff;
    for (;;) {
      atomic_ops::count(cat);
      TTG_SIM_POINT("bucket.lock");
      if (flag_.exchange(1, ord_acquire()) == 0) return;
      // Spin on a plain load before retrying the RMW so the line stays
      // shared while contended.
      while (flag_.load(std::memory_order_relaxed) != 0) backoff.pause();
    }
  }

  bool try_lock(AtomicOpCategory cat = AtomicOpCategory::kBucketLock) noexcept {
    if (flag_.load(std::memory_order_relaxed) != 0) return false;
    atomic_ops::count(cat);
    TTG_SIM_POINT("bucket.try_lock");
    return flag_.exchange(1, ord_acquire()) == 0;
  }

  void unlock() noexcept {
    TTG_SIM_POINT("bucket.unlock");
    flag_.store(0, ord_release());
  }

  bool is_locked() const noexcept {
    return flag_.load(std::memory_order_relaxed) != 0;
  }

 private:
  std::atomic<std::uint32_t> flag_{0};
};

/// RAII guard for BucketLock.
class BucketGuard {
 public:
  explicit BucketGuard(BucketLock& l) : lock_(&l) { lock_->lock(); }
  ~BucketGuard() {
    if (lock_) lock_->unlock();
  }
  BucketGuard(const BucketGuard&) = delete;
  BucketGuard& operator=(const BucketGuard&) = delete;

 private:
  BucketLock* lock_;
};

}  // namespace ttg
