// BRAVO reader-biased reader-writer lock wrapper (paper Sec. IV-D,
// following Dice & Kogan, USENIX ATC'19).
//
// The wrapper sits on top of any reader-writer lock. While the lock is
// "reader biased", a reader announces itself with a plain store into a
// thread-private, cache-line-padded slot of a visible-readers table, then
// re-checks the bias flag; no atomic RMW on shared state is performed on
// the fast path. A writer takes the underlying lock, revokes the bias,
// and waits for every slot to drain before proceeding.
//
// Deviations from the original paper that this reproduction keeps from
// Sec. IV-D of the TTG paper: one table *per lock* (instead of one global
// table indexed by hash(thread, lock)) so slot collisions are impossible
// and no cache line is ever shared between threads; the table holds one
// padded slot per possible runtime thread, sized at construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "atomics/ordering.hpp"
#include "common/busy_wait.hpp"
#include "common/cache.hpp"
#include "common/cycle_clock.hpp"
#include "common/thread_id.hpp"
#include "sim/hooks.hpp"
#include "sync/rwlock.hpp"

namespace ttg {

/// Global switch: when false, BravoRWLock degrades to its underlying
/// reader-writer lock (used for the Fig. 9 ablation's "no biased rwlock"
/// configuration without changing any call sites).
namespace detail {
inline std::atomic<bool> g_bravo_enabled{true};
}
inline void set_bravo_enabled(bool e) {
  detail::g_bravo_enabled.store(e, std::memory_order_relaxed);
}
inline bool bravo_enabled() {
  return detail::g_bravo_enabled.load(std::memory_order_relaxed);
}

template <typename Underlying = RWSpinLock>
class BravoRWLock {
 public:
  /// Opaque cookie describing how the reader lock was taken; must be
  /// passed back to read_unlock(). A null slot means the slow path.
  struct ReaderToken {
    std::atomic<std::uint32_t>* slot = nullptr;
  };

  explicit BravoRWLock(int max_threads = kMaxThreads)
      : num_slots_(max_threads),
        slots_(std::make_unique<CachePadded<std::atomic<std::uint32_t>>[]>(
            static_cast<std::size_t>(max_threads))) {}

  BravoRWLock(const BravoRWLock&) = delete;
  BravoRWLock& operator=(const BravoRWLock&) = delete;

  ReaderToken read_lock() noexcept {
    if (rbias_.load(std::memory_order_relaxed)) {
      auto& slot = slots_[this_thread::id()].value;
#if defined(TTG_MUTANT_BRAVO_FENCE_REORDER)
      // MUTANT: models dropping the seq_cst fence — without it the
      // hardware may order the bias re-check *before* the slot
      // publication, exactly the hoisted form below. A writer revoking
      // between the re-check and the store scans an empty slot table and
      // enters its critical section alongside this reader.
      const bool bias_still = rbias_.load(std::memory_order_relaxed);
      TTG_SIM_POINT("bravo.read.reordered");
      slot.store(1, std::memory_order_relaxed);
      if (bias_still) {
        return ReaderToken{&slot};
      }
      slot.store(0, ord_release());
#else
      // Announce the read. The seq_cst fence orders the slot publication
      // against the bias re-check; neither access is an RMW and the slot
      // line is thread-private, so this scales with readers.
      slot.store(1, std::memory_order_relaxed);
      TTG_SIM_POINT("bravo.read.announce");
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (rbias_.load(std::memory_order_relaxed)) {
        return ReaderToken{&slot};  // fast path
      }
      // A writer revoked the bias between our store and the re-check:
      // retract the announcement and fall back.
      slot.store(0, ord_release());
#endif
    }
    underlying_.read_lock();
    // Re-arm the bias once the revocation cool-down has passed, so that
    // a single writer does not permanently disable the fast path.
    if (bravo_enabled() && !rbias_.load(std::memory_order_relaxed) &&
        clock_now() >= inhibit_until_.load(std::memory_order_relaxed)) {
      rbias_.store(true, std::memory_order_relaxed);
    }
    return ReaderToken{nullptr};
  }

  void read_unlock(ReaderToken token) noexcept {
    if (token.slot != nullptr) {
      TTG_SIM_POINT("bravo.read.unlock");
      token.slot->store(0, ord_release());
    } else {
      underlying_.read_unlock();
    }
  }

  void write_lock() noexcept {
    underlying_.write_lock();
    if (rbias_.load(std::memory_order_relaxed)) {
      revoke_bias();
    }
  }

  void write_unlock() noexcept { underlying_.write_unlock(); }

  /// Test hook: whether the reader fast path is currently armed.
  bool reader_biased() const noexcept {
    return rbias_.load(std::memory_order_relaxed);
  }

 private:
  void revoke_bias() noexcept {
    const std::uint64_t start = clock_now();
    rbias_.store(false, std::memory_order_relaxed);
    TTG_SIM_POINT("bravo.revoke.fence");
    std::atomic_thread_fence(std::memory_order_seq_cst);
#if defined(TTG_MUTANT_BRAVO_SKIP_DRAIN)
    // MUTANT: skip waiting for announced readers to drain. A reader that
    // published its slot and passed the bias re-check still holds a valid
    // fast-path read lock when the writer enters its critical section.
#else
    // Wait for every announced reader to drain. Readers that stored 1
    // before observing rbias==false hold a valid fast-path read lock.
    for (int i = 0; i < num_slots_; ++i) {
      Backoff backoff;
      while (slots_[i].value.load(std::memory_order_acquire) != 0) {
        backoff.pause();
      }
    }
#endif
    // BRAVO's adaptive policy: keep the bias off for N x the revocation
    // cost, bounding the worst-case writer slowdown.
    const std::uint64_t scan_cycles = clock_now() - start;
    inhibit_until_.store(clock_now() + kInhibitMultiplier * scan_cycles,
                         std::memory_order_relaxed);
  }

  /// Timestamp source for the revocation cool-down. Under deterministic
  /// simulation the TSC would make replay diverge, so the instrumented
  /// build substitutes the sim step counter.
  static std::uint64_t clock_now() noexcept {
#if defined(TTG_SIM)
    return sim::virtual_now();
#else
    return rdtsc();
#endif
  }

  static constexpr std::uint64_t kInhibitMultiplier = 9;

  Underlying underlying_;
  std::atomic<bool> rbias_{bravo_enabled()};
  std::atomic<std::uint64_t> inhibit_until_{0};
  const int num_slots_;
  std::unique_ptr<CachePadded<std::atomic<std::uint32_t>>[]> slots_;
};

/// RAII reader guard.
template <typename Lock>
class BravoReadGuard {
 public:
  explicit BravoReadGuard(Lock& l) : lock_(l), token_(l.read_lock()) {}
  ~BravoReadGuard() { lock_.read_unlock(token_); }
  BravoReadGuard(const BravoReadGuard&) = delete;
  BravoReadGuard& operator=(const BravoReadGuard&) = delete;

 private:
  Lock& lock_;
  typename Lock::ReaderToken token_;
};

}  // namespace ttg
