#include "sync/bravo.hpp"

namespace ttg {

// Anchor the common instantiation so its code is shared across TUs.
template class BravoRWLock<RWSpinLock>;

}  // namespace ttg
