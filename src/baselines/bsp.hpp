// BSP executor: the MPI stand-in (see DESIGN.md substitutions).
//
// The paper's Task-Bench comparison includes a pure-MPI variant whose
// advantage on one node is precisely that it has *no task handling*: each
// rank runs a loop of compute / exchange / barrier. This module provides
// that execution model with threads as ranks: SPMD launch, barriers, and
// two-sided tagged point-to-point messages through per-rank mailboxes.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bsp {

class Communicator;

/// The per-rank handle passed to the SPMD body.
class Rank {
 public:
  int id() const { return id_; }
  int size() const { return size_; }

  /// Blocks until every rank reached the barrier.
  void barrier();

  /// Sends `count` elements of trivially-copyable T to `dest` with `tag`.
  template <typename T>
  void send(int dest, int tag, const T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, data, count * sizeof(T));
  }
  template <typename T>
  void send(int dest, int tag, const T& value) {
    send(dest, tag, &value, 1);
  }

  /// Blocks until a message with `tag` from `src` arrives; copies it out.
  template <typename T>
  void recv(int src, int tag, T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    recv_bytes(src, tag, data, count * sizeof(T));
  }
  template <typename T>
  T recv(int src, int tag) {
    T v;
    recv(src, tag, &v, 1);
    return v;
  }

 private:
  friend class Communicator;
  void send_bytes(int dest, int tag, const void* data, std::size_t bytes);
  void recv_bytes(int src, int tag, void* data, std::size_t bytes);

  Communicator* comm_ = nullptr;
  int id_ = 0;
  int size_ = 0;
};

class Communicator {
 public:
  explicit Communicator(int nranks);

  int size() const { return nranks_; }

  /// Runs `body(rank)` on nranks threads SPMD-style; returns when all
  /// ranks finished.
  void run(const std::function<void(Rank&)>& body);

 private:
  friend class Rank;

  struct Message {
    int src;
    int tag;
    std::vector<std::uint8_t> payload;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> messages;
  };

  struct Barrier {
    std::mutex mutex;
    std::condition_variable cv;
    int count = 0;
    std::uint64_t generation = 0;
  };

  int nranks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  Barrier barrier_;
};

}  // namespace bsp
