#include "baselines/bsp.hpp"

#include <algorithm>

namespace bsp {

Communicator::Communicator(int nranks) : nranks_(nranks) {
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void Communicator::run(const std::function<void(Rank&)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r) {
    threads.emplace_back([this, r, &body] {
      Rank rank;
      rank.comm_ = this;
      rank.id_ = r;
      rank.size_ = nranks_;
      body(rank);
    });
  }
  for (auto& t : threads) t.join();
}

void Rank::barrier() {
  auto& b = comm_->barrier_;
  std::unique_lock<std::mutex> lock(b.mutex);
  const std::uint64_t gen = b.generation;
  if (++b.count == comm_->nranks_) {
    b.count = 0;
    ++b.generation;
    b.cv.notify_all();
  } else {
    b.cv.wait(lock, [&] { return b.generation != gen; });
  }
}

void Rank::send_bytes(int dest, int tag, const void* data,
                      std::size_t bytes) {
  auto& box = *comm_->mailboxes_[dest];
  Communicator::Message msg;
  msg.src = id_;
  msg.tag = tag;
  msg.payload.resize(bytes);
  std::memcpy(msg.payload.data(), data, bytes);
  {
    std::lock_guard<std::mutex> guard(box.mutex);
    box.messages.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

void Rank::recv_bytes(int src, int tag, void* data, std::size_t bytes) {
  auto& box = *comm_->mailboxes_[id_];
  std::unique_lock<std::mutex> lock(box.mutex);
  for (;;) {
    auto it = std::find_if(box.messages.begin(), box.messages.end(),
                           [&](const Communicator::Message& m) {
                             return m.src == src && m.tag == tag;
                           });
    if (it != box.messages.end()) {
      std::memcpy(data, it->payload.data(),
                  std::min(bytes, it->payload.size()));
      box.messages.erase(it);
      return;
    }
    box.cv.wait(lock);
  }
}

}  // namespace bsp
