// taskflow_mini: a small TaskFlow-style control-flow task library.
//
// Stands in for TaskFlow in the Fig. 5 minimum-task-latency comparison
// (see DESIGN.md substitutions). Like TaskFlow it supports only control
// flow between tasks — no data flows along edges and "multiple flows
// between the two same tasks" are not supported — which is exactly the
// property the paper exercises: a serial chain of trivially dependent
// tasks measuring per-task overhead.
//
// Model: a static DAG of nodes with join counters, executed by a
// work-stealing pool of worker threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace tfm {

class Taskflow;
class Executor;

namespace detail {
struct Node {
  std::function<void()> work;
  std::vector<Node*> successors;
  std::uint32_t num_dependents = 0;
  std::atomic<std::uint32_t> join_counter{0};
};
}  // namespace detail

/// Lightweight handle to a node inside a Taskflow.
class Task {
 public:
  /// Declares that this task runs before `next`.
  Task& precede(Task& next);
  Task& name(const char*) { return *this; }  // API-compat no-op

 private:
  friend class Taskflow;
  friend class Executor;
  explicit Task(detail::Node* node) : node_(node) {}
  detail::Node* node_;
};

/// A static task graph: emplace tasks, wire them with precede().
class Taskflow {
 public:
  template <typename F>
  Task emplace(F&& f) {
    nodes_.push_back(std::make_unique<detail::Node>());
    nodes_.back()->work = std::forward<F>(f);
    return Task(nodes_.back().get());
  }

  std::size_t num_tasks() const { return nodes_.size(); }

 private:
  friend class Executor;
  std::vector<std::unique_ptr<detail::Node>> nodes_;
};

/// Executes Taskflows on a pool of worker threads with work stealing.
class Executor {
 public:
  explicit Executor(int num_threads = 1);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Runs the graph to completion; blocks the calling thread.
  void run(Taskflow& flow);

  int num_threads() const { return num_threads_; }

 private:
  struct Queue;  // per-worker LIFO + lock
  void worker_main(int index);
  void push(int worker, detail::Node* node);
  detail::Node* pop(int worker);
  void execute_node(int worker, detail::Node* node);

  int num_threads_;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<std::int64_t> remaining_{0};
  std::atomic<std::uint64_t> signal_{0};
  std::atomic<int> sleepers_{0};
};

}  // namespace tfm
