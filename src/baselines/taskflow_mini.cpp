#include "baselines/taskflow_mini.hpp"

#include <mutex>

namespace tfm {

Task& Task::precede(Task& next) {
  node_->successors.push_back(next.node_);
  ++next.node_->num_dependents;
  return next;
}

struct Executor::Queue {
  std::mutex mutex;
  std::vector<detail::Node*> items;  // LIFO
};

Executor::Executor(int num_threads) : num_threads_(num_threads) {
  queues_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  threads_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

Executor::~Executor() {
  stop_.store(true, std::memory_order_release);
  signal_.fetch_add(1, std::memory_order_release);
  signal_.notify_all();
  for (auto& t : threads_) t.join();
}

void Executor::push(int worker, detail::Node* node) {
  Queue& q = *queues_[worker];
  {
    std::lock_guard<std::mutex> guard(q.mutex);
    q.items.push_back(node);
  }
  signal_.fetch_add(1, std::memory_order_release);
  if (sleepers_.load(std::memory_order_acquire) > 0) signal_.notify_all();
}

detail::Node* Executor::pop(int worker) {
  for (int i = 0; i < num_threads_; ++i) {
    Queue& q = *queues_[(worker + i) % num_threads_];
    std::lock_guard<std::mutex> guard(q.mutex);
    if (!q.items.empty()) {
      detail::Node* node = q.items.back();
      q.items.pop_back();
      return node;
    }
  }
  return nullptr;
}

void Executor::execute_node(int worker, detail::Node* node) {
  node->work();
  for (detail::Node* succ : node->successors) {
    if (succ->join_counter.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      push(worker, succ);
    }
  }
  remaining_.fetch_sub(1, std::memory_order_acq_rel);
}

void Executor::run(Taskflow& flow) {
  for (auto& node : flow.nodes_) {
    node->join_counter.store(node->num_dependents,
                             std::memory_order_relaxed);
  }
  remaining_.store(static_cast<std::int64_t>(flow.num_tasks()),
                   std::memory_order_release);
  int next = 0;
  for (auto& node : flow.nodes_) {
    if (node->num_dependents == 0) {
      push(next % num_threads_, node.get());
      ++next;
    }
  }
  while (remaining_.load(std::memory_order_acquire) > 0) {
    std::this_thread::yield();
  }
}

void Executor::worker_main(int index) {
  while (!stop_.load(std::memory_order_acquire)) {
    if (detail::Node* node = pop(index); node != nullptr) {
      execute_node(index, node);
      continue;
    }
    const std::uint64_t v = signal_.load(std::memory_order_acquire);
    if (detail::Node* node = pop(index); node != nullptr) {
      execute_node(index, node);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    sleepers_.fetch_add(1, std::memory_order_acq_rel);
    signal_.wait(v, std::memory_order_acquire);
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace tfm
