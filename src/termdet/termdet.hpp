// Termination detection (paper Sec. III-A and IV-B).
//
// A TTG application terminates when the number of pending tasks
// N_P = N_D - N_E reaches zero on every process and no messages are in
// flight. The detector implements the *four-counter wave* algorithm: a
// rank that is locally quiet contributes its (messages sent, messages
// received) counters to a reduction; when the reduced totals are equal
// and unchanged over two consecutive reductions, global termination is
// announced. Multiple "ranks" are simulated in-process (the distributed
// TTG mode uses one rank per simulated process; shared-memory runs use a
// single rank, for which the wave degenerates to two trivial rounds).
//
// Two accounting modes reproduce the paper's before/after:
//  * kProcessAtomic ("original"): every task discovery/completion does an
//    atomic RMW on a rank-wide counter — the contended hot spot of
//    Sec. III-A.
//  * kThreadLocal ("optimized", Sec. IV-B): each thread counts
//    non-atomically in its own cache line and pushes the accumulated
//    delta to the rank-wide counter only when it falls idle; a rank-wide
//    count of non-idle threads gates the quietness test.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/cache.hpp"
#include "common/thread_id.hpp"
#include "sync/bucket_lock.hpp"

namespace ttg {

enum class TermDetMode {
  kProcessAtomic,  ///< original: shared atomic counters
  kThreadLocal,    ///< optimized: per-thread counters, flushed on idle
};

class TerminationDetector {
 public:
  explicit TerminationDetector(int nranks = 1,
                               TermDetMode mode = TermDetMode::kThreadLocal);

  TerminationDetector(const TerminationDetector&) = delete;
  TerminationDetector& operator=(const TerminationDetector&) = delete;

  /// Binds the calling thread to `rank` and marks it active. Must be
  /// called before any other thread-side call on this thread.
  void thread_attach(int rank);

  /// N new tasks (or internal actions) became known. Must be invoked
  /// *before* the tasks are made schedulable. A suspended coroutine
  /// segment (runtime/coroutine.hpp) counts its continuation here before
  /// parking, so a suspended task is discovered-but-not-complete: the
  /// termination wave cannot converge while any body is parked on a
  /// timer or an InputGate.
  void on_discovered(std::int64_t n = 1);

  /// Rank-aware discovery for threads that may not be attached (e.g. an
  /// application helper thread seeding a graph): attached threads take
  /// the usual thread-local fast path, unattached threads account
  /// directly on `rank`'s shared counter — their per-thread counter is
  /// never flushed, so routing through it would strand the discovery
  /// (premature termination or a hung fence, depending on the race).
  void on_discovered(int rank, std::int64_t n);

  /// One task (or action) finished executing.
  void on_completed();

  /// N discovered tasks were dropped by cooperative cancellation without
  /// executing. Accounted as completions ("cancelled completions") so
  /// the wave converges exactly as if they had run. Rank-aware like the
  /// two-argument on_discovered(): `rank` is used when the calling
  /// thread is unattached.
  void on_cancelled(int rank, std::int64_t n = 1);

  /// Active-message accounting for the simulated multi-rank mode.
  void on_message_sent();
  void on_message_received();

  /// The calling thread found no work: flush its local counters, mark it
  /// idle, and advance the termination wave if the rank is quiet.
  void on_idle();

  /// The calling thread obtained work again after being idle.
  void on_resume();

  /// True once global termination has been announced. Monotonic until
  /// reset().
  bool terminated() const {
    return terminated_.load(std::memory_order_acquire);
  }

  /// Starts a new epoch (after a fence). Callers must guarantee no
  /// concurrent thread-side calls.
  void reset();

  /// External-wave mode (distributed worlds, comm/term_wave.hpp): the
  /// in-process reduction in advance_wave() is disabled — this process
  /// only ever sees its own rank's counters, so a local all-quiet test
  /// would announce termination the moment the local rank drains, with
  /// remote work and in-flight messages unaccounted. Termination is
  /// instead announced explicitly via announce() when the distributed
  /// token-ring wave converges. Set before any thread-side call.
  void set_external_wave(bool external) { external_wave_ = external; }
  bool external_wave() const { return external_wave_; }

  /// External-wave announcement: the distributed wave converged (root
  /// evaluated two stable rounds, or the announce frame arrived).
  void announce() { terminated_.store(true, std::memory_order_release); }

  TermDetMode mode() const { return mode_; }
  int num_ranks() const { return nranks_; }

  /// Local-rank observations for the distributed wave: quietness
  /// (pending == 0 and no active thread — every thread-local counter
  /// flushed) and the flushed message counters. Only meaningful for the
  /// rank this process hosts.
  bool rank_locally_quiet(int rank) const { return rank_quiet(ranks_[rank]); }
  std::int64_t rank_sent(int rank) const {
    return ranks_[rank].sent.load(std::memory_order_acquire);
  }
  std::int64_t rank_received(int rank) const {
    return ranks_[rank].received.load(std::memory_order_acquire);
  }

  /// Diagnostics / test hooks.
  std::int64_t rank_pending(int rank) const;
  std::int64_t total_discovered() const;
  std::int64_t total_completed() const;
  std::int64_t total_cancelled() const;
  /// Sum of rank-wide pending counters (excludes unflushed thread-local
  /// deltas); the stall watchdog's liveness signal.
  std::int64_t total_pending() const;

 private:
  struct alignas(kCacheLineSize) RankState {
    std::atomic<std::int64_t> pending{0};
    std::atomic<std::int64_t> sent{0};
    std::atomic<std::int64_t> received{0};
    std::atomic<std::int32_t> active_threads{0};
    std::atomic<std::uint32_t> contributed_round{0};
  };

  struct alignas(kCacheLineSize) ThreadState {
    std::int64_t local_pending = 0;  // discovered - completed, unflushed
    std::int64_t local_sent = 0;
    std::int64_t local_received = 0;
    // Diagnostic tallies: single-writer (the owning thread), but read
    // live by the stall watchdog, so they are relaxed atomics bumped
    // with a load+store pair — plain MOVs on x86, no RMW, so the
    // Eq. (1) atomic-operation accounting is unchanged.
    std::atomic<std::int64_t> stat_discovered{0};
    std::atomic<std::int64_t> stat_completed{0};
    std::atomic<std::int64_t> stat_cancelled{0};
    int rank = -1;
    bool active = false;
  };

  bool rank_quiet(const RankState& r) const;
  void flush_thread(ThreadState& ts);

 public:
  /// Advances the termination wave: contributes the counters of every
  /// currently-quiet rank that has not yet contributed to the open round,
  /// and closes the round when all ranks have contributed. Called from
  /// on_idle() and from fence polling loops. In a real distributed
  /// deployment each rank contributes via messages; in this in-process
  /// simulation the reduction buffer is shared, so any idle thread may
  /// perform the (idempotent, CAS-guarded) contribution on a quiet
  /// rank's behalf.
  void advance_wave();

 private:

  const int nranks_;
  const TermDetMode mode_;
  bool external_wave_ = false;  // set once before threads start

  RankState ranks_[/*generous upper bound*/ 64];
  ThreadState threads_[kMaxThreads];

  // Wave state; mutated only while holding wave_lock_.
  BucketLock wave_lock_;
  std::atomic<std::uint32_t> round_{1};
  std::atomic<int> contributions_{0};
  std::atomic<std::int64_t> round_sent_{0};
  std::atomic<std::int64_t> round_recv_{0};
  std::atomic<std::int64_t> last_sent_{-1};
  std::atomic<std::int64_t> last_recv_{-1};
  std::atomic<bool> terminated_{false};
};

}  // namespace ttg
