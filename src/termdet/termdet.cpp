#include "termdet/termdet.hpp"

#include <cassert>

#include "atomics/op_counter.hpp"
#include "atomics/ordering.hpp"
#include "runtime/trace.hpp"
#include "sim/hooks.hpp"

namespace ttg {

TerminationDetector::TerminationDetector(int nranks, TermDetMode mode)
    : nranks_(nranks), mode_(mode) {
  assert(nranks >= 1 && nranks <= 64);
}

namespace {
// Single-writer bump for the diagnostic tallies the stall watchdog reads
// live: a relaxed load+store pair, not an RMW.
inline void bump(std::atomic<std::int64_t>& c, std::int64_t n) {
  c.store(c.load(std::memory_order_relaxed) + n,
          std::memory_order_relaxed);
}
}  // namespace

void TerminationDetector::thread_attach(int rank) {
  assert(rank >= 0 && rank < nranks_);
  ThreadState& ts = threads_[this_thread::id()];
  ts.rank = rank;
  ts.active = true;
  atomic_ops::count(AtomicOpCategory::kTermDet);
  ranks_[rank].active_threads.fetch_add(1, ord_relaxed());
}

void TerminationDetector::on_discovered(std::int64_t n) {
  ThreadState& ts = threads_[this_thread::id()];
  assert(ts.rank >= 0 && "thread_attach() missing");
  bump(ts.stat_discovered, n);
  if (mode_ == TermDetMode::kProcessAtomic) {
    atomic_ops::count(AtomicOpCategory::kTermDet);
    ranks_[ts.rank].pending.fetch_add(n, ord_relaxed());
  } else {
    ts.local_pending += n;
  }
}

void TerminationDetector::on_discovered(int rank, std::int64_t n) {
  ThreadState& ts = threads_[this_thread::id()];
  if (ts.rank >= 0) {
    on_discovered(n);  // attached: the usual thread-local fast path
    return;
  }
  assert(rank >= 0 && rank < nranks_);
  bump(ts.stat_discovered, n);
  atomic_ops::count(AtomicOpCategory::kTermDet);
  ranks_[rank].pending.fetch_add(n, ord_acq_rel());
}

void TerminationDetector::on_cancelled(int rank, std::int64_t n) {
  ThreadState& ts = threads_[this_thread::id()];
  bump(ts.stat_cancelled, n);
  TTG_SIM_POINT("termdet.cancel.account");
#if defined(TTG_MUTANT_TERMDET_CANCEL_DROP)
  // MUTANT: dropped tasks are forgotten instead of retired as cancelled
  // completions — rank-wide pending never drains back to zero, so the
  // wave can never announce and every cancelled run hangs in wait().
  (void)rank;
#else
  bump(ts.stat_completed, n);
  if (ts.rank >= 0 && mode_ == TermDetMode::kThreadLocal) {
    ts.local_pending -= n;
  } else {
    assert((ts.rank >= 0 || (rank >= 0 && rank < nranks_)) &&
           "on_cancelled from an unattached thread needs a valid rank");
    atomic_ops::count(AtomicOpCategory::kTermDet);
    ranks_[ts.rank >= 0 ? ts.rank : rank].pending.fetch_sub(n,
                                                            ord_acq_rel());
  }
#endif
}

void TerminationDetector::on_completed() {
  ThreadState& ts = threads_[this_thread::id()];
  bump(ts.stat_completed, 1);
  if (mode_ == TermDetMode::kProcessAtomic) {
    atomic_ops::count(AtomicOpCategory::kTermDet);
    ranks_[ts.rank].pending.fetch_sub(1, ord_relaxed());
  } else {
    ts.local_pending -= 1;
  }
}

void TerminationDetector::on_message_sent() {
  ThreadState& ts = threads_[this_thread::id()];
  if (mode_ == TermDetMode::kProcessAtomic) {
    atomic_ops::count(AtomicOpCategory::kTermDet);
    ranks_[ts.rank].sent.fetch_add(1, ord_relaxed());
  } else {
    ts.local_sent += 1;
  }
}

void TerminationDetector::on_message_received() {
  ThreadState& ts = threads_[this_thread::id()];
  if (mode_ == TermDetMode::kProcessAtomic) {
    atomic_ops::count(AtomicOpCategory::kTermDet);
    ranks_[ts.rank].received.fetch_add(1, ord_relaxed());
  } else {
    ts.local_received += 1;
  }
}

void TerminationDetector::flush_thread(ThreadState& ts) {
  RankState& r = ranks_[ts.rank];
  if (ts.local_pending != 0) {
    atomic_ops::count(AtomicOpCategory::kTermDet);
    r.pending.fetch_add(ts.local_pending, ord_acq_rel());
    ts.local_pending = 0;
  }
  if (ts.local_sent != 0) {
    atomic_ops::count(AtomicOpCategory::kTermDet);
    r.sent.fetch_add(ts.local_sent, ord_acq_rel());
    ts.local_sent = 0;
  }
  if (ts.local_received != 0) {
    atomic_ops::count(AtomicOpCategory::kTermDet);
    r.received.fetch_add(ts.local_received, ord_acq_rel());
    ts.local_received = 0;
  }
}

bool TerminationDetector::rank_quiet(const RankState& r) const {
  // A rank is quiet when no tasks are pending *and* no thread of the rank
  // is active. The active-thread gate matters in both modes: in the
  // thread-local mode an active thread may hold unflushed discoveries; in
  // either mode an active producer (e.g. the application thread between
  // execute() and fence()) is still allowed to submit work, so announcing
  // termination under it would be premature.
  if (r.pending.load(std::memory_order_acquire) != 0) return false;
  TTG_SIM_POINT("termdet.quiet.between_loads");
#if defined(TTG_MUTANT_TERMDET_IGNORE_ACTIVE)
  // MUTANT: drop the active-thread gate. A thread that is attached and
  // running (e.g. an external submitter between execute() and its late
  // discovery) no longer blocks quietness, so the wave can announce
  // termination just before new work arrives.
#else
  if (r.active_threads.load(std::memory_order_acquire) != 0) return false;
#endif
  return true;
}

void TerminationDetector::on_idle() {
  ThreadState& ts = threads_[this_thread::id()];
  assert(ts.rank >= 0 && "thread_attach() missing");
  flush_thread(ts);
  TTG_SIM_POINT("termdet.idle.flushed");
  if (ts.active) {
    ts.active = false;
    atomic_ops::count(AtomicOpCategory::kTermDet);
    ranks_[ts.rank].active_threads.fetch_sub(1, ord_acq_rel());
  }
  TTG_SIM_POINT("termdet.idle.deactivated");
  if (!terminated()) advance_wave();
}

void TerminationDetector::on_resume() {
  ThreadState& ts = threads_[this_thread::id()];
  if (!ts.active) {
    ts.active = true;
    atomic_ops::count(AtomicOpCategory::kTermDet);
    ranks_[ts.rank].active_threads.fetch_add(1, ord_acq_rel());
  }
}

void TerminationDetector::advance_wave() {
  if (terminated()) return;
  // Distributed worlds: the wave runs over the transport as a token
  // ring (comm/term_wave.hpp); the local reduction would announce on
  // this process's lone rank alone.
  if (external_wave_) return;
  // The wave is a cold path ("the communication of local termination
  // typically occurs infrequently", Sec. III-A), so a try-lock keeps it
  // simple and race-free: at most one thread advances the wave at a time
  // and everyone else just goes back to looking for work.
  if (!wave_lock_.try_lock(AtomicOpCategory::kTermDet)) return;

  const std::uint32_t round = round_.load(std::memory_order_relaxed);
  bool closed_round = false;
  for (int rank = 0; rank < nranks_; ++rank) {
    RankState& r = ranks_[rank];
    if (!rank_quiet(r)) continue;
    if (r.contributed_round.load(std::memory_order_relaxed) >= round) {
      continue;  // this rank already contributed to the open round
    }
    TTG_SIM_POINT("termdet.wave.contribute");
    r.contributed_round.store(round, std::memory_order_relaxed);
    round_sent_.fetch_add(r.sent.load(std::memory_order_acquire),
                          std::memory_order_relaxed);
    round_recv_.fetch_add(r.received.load(std::memory_order_acquire),
                          std::memory_order_relaxed);
    if (contributions_.fetch_add(1, std::memory_order_relaxed) + 1 ==
        nranks_) {
      closed_round = true;
    }
  }

  if (closed_round) {
    // This thread closes the round and acts as the wave's root.
    TTG_SIM_POINT("termdet.wave.close");
    const std::int64_t sent = round_sent_.load(std::memory_order_relaxed);
    const std::int64_t recv = round_recv_.load(std::memory_order_relaxed);

    bool all_quiet = true;
    for (int i = 0; i < nranks_; ++i) {
      if (!rank_quiet(ranks_[i])) {
        all_quiet = false;
        break;
      }
    }

    const bool stable = sent == recv &&
                        sent == last_sent_.load(std::memory_order_relaxed) &&
                        recv == last_recv_.load(std::memory_order_relaxed);
    trace::record(trace::EventKind::kTermDetRound, round);
    if (stable && all_quiet) {
      terminated_.store(true, std::memory_order_release);
    } else {
      // Start the next round.
      last_sent_.store(sent, std::memory_order_relaxed);
      last_recv_.store(recv, std::memory_order_relaxed);
      round_sent_.store(0, std::memory_order_relaxed);
      round_recv_.store(0, std::memory_order_relaxed);
      contributions_.store(0, std::memory_order_relaxed);
      round_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  wave_lock_.unlock();
}

void TerminationDetector::reset() {
  // Per-thread local counters are NOT touched: a rank can only have been
  // quiet (and hence the epoch terminated) after every thread flushed,
  // so they are all zero already — and idle workers may concurrently be
  // in on_idle() re-flushing their (zero) deltas.
  //
  // The wave lock serializes against a worker that read terminated() as
  // false just before the final announcement and is still inside
  // advance_wave() for the dead epoch.
  wave_lock_.lock(AtomicOpCategory::kTermDet);
  for (int i = 0; i < nranks_; ++i) {
    ranks_[i].pending.store(0, std::memory_order_relaxed);
    ranks_[i].sent.store(0, std::memory_order_relaxed);
    ranks_[i].received.store(0, std::memory_order_relaxed);
    ranks_[i].contributed_round.store(0, std::memory_order_relaxed);
    // active_threads intentionally preserved: attached threads stay
    // attached across epochs.
  }
  last_sent_.store(-1, std::memory_order_relaxed);
  last_recv_.store(-1, std::memory_order_relaxed);
  round_sent_.store(0, std::memory_order_relaxed);
  round_recv_.store(0, std::memory_order_relaxed);
  contributions_.store(0, std::memory_order_relaxed);
  round_.fetch_add(1, std::memory_order_relaxed);
  terminated_.store(false, std::memory_order_release);
  wave_lock_.unlock();
}

std::int64_t TerminationDetector::rank_pending(int rank) const {
  return ranks_[rank].pending.load(std::memory_order_acquire);
}

std::int64_t TerminationDetector::total_discovered() const {
  std::int64_t n = 0;
  const int t = this_thread::id_count();
  for (int i = 0; i < t; ++i) n += threads_[i].stat_discovered.load(std::memory_order_relaxed);
  return n;
}

std::int64_t TerminationDetector::total_completed() const {
  std::int64_t n = 0;
  const int t = this_thread::id_count();
  for (int i = 0; i < t; ++i) n += threads_[i].stat_completed.load(std::memory_order_relaxed);
  return n;
}

std::int64_t TerminationDetector::total_cancelled() const {
  std::int64_t n = 0;
  const int t = this_thread::id_count();
  for (int i = 0; i < t; ++i) n += threads_[i].stat_cancelled.load(std::memory_order_relaxed);
  return n;
}

std::int64_t TerminationDetector::total_pending() const {
  std::int64_t n = 0;
  for (int i = 0; i < nranks_; ++i) {
    n += ranks_[i].pending.load(std::memory_order_acquire);
  }
  return n;
}

}  // namespace ttg
