// Legendre polynomials, Gauss-Legendre quadrature, and the normalized
// scaling functions of the multiwavelet basis (Alpert et al., JCP 2002).
//
// The order-k basis on [0,1] is phi_i(x) = sqrt(2i+1) P_i(2x - 1),
// i = 0..k-1, an orthonormal polynomial basis on the unit interval. All
// quadratures here integrate polynomials of the occurring degrees
// exactly.
#pragma once

#include <cstddef>
#include <vector>

namespace mra {

/// Evaluates P_0..P_{k-1} (standard Legendre on [-1,1]) at `x` into p.
void legendre(double x, std::size_t k, double* p);

/// Evaluates the normalized scaling functions phi_0..phi_{k-1} on [0,1]
/// at `x` into p.
void scaling_functions(double x, std::size_t k, double* p);

/// Gauss-Legendre nodes and weights on [0,1]; exact for polynomials of
/// degree <= 2n-1.
struct Quadrature {
  std::vector<double> x;
  std::vector<double> w;
};
Quadrature gauss_legendre(std::size_t n);

}  // namespace mra
