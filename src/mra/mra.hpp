// Multi-resolution analysis mini-app (paper Sec. V-E).
//
// Computes the order-k multiwavelet representation of 3D Gaussian
// functions on an adaptively refined octree, as three dataflow phases
// that overlap freely under TTG:
//   projection     — top-down: project f onto each box's scaling basis;
//                    refine while the wavelet residual exceeds thresh
//   compression    — bottom-up: filter children into parents, storing
//                    the difference (wavelet) coefficients per box
//   reconstruction — top-down: unfilter parents + differences back into
//                    leaf scaling coefficients (exactly inverting
//                    compression)
// Each interior-node transform applies the k x 2k two-scale filter along
// the three dimensions of a (2k)^3 child tensor — the "GEMM on 20^2
// matrices" workload for the paper's k = 10.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "runtime/config.hpp"

namespace mra {

struct MraParams {
  std::size_t k = 10;        ///< polynomial order (paper: 10)
  double thresh = 1e-4;      ///< truncation threshold (paper: 1e-8)
  int initial_level = 2;     ///< projection starts on this uniform level
  int max_level = 20;        ///< refinement safety stop
  double lo = -6.0;          ///< simulation cell [lo, hi]^3 (paper: [-6,6]^3)
  double hi = 6.0;
};

/// An L2-normalized (up to truncation) Gaussian coeff * exp(-a |r - c|^2).
struct Gaussian {
  double cx, cy, cz;
  double expnt;
  double coeff;

  double operator()(double x, double y, double z) const;

  /// coeff chosen so the R^3 L2 norm is exactly 1.
  static Gaussian normalized(double cx, double cy, double cz, double expnt);
};

/// `count` normalized Gaussians with centers uniformly random in the
/// inner half of the cell (so the tails stay inside), fixed exponent.
std::vector<Gaussian> random_gaussians(int count, double expnt,
                                       std::uint64_t seed,
                                       const MraParams& params);

struct MraResult {
  double seconds = 0;            ///< wall time of the full pipeline
  std::uint64_t project_tasks = 0;
  std::uint64_t compress_tasks = 0;
  std::uint64_t reconstruct_tasks = 0;
  std::uint64_t leaves = 0;      ///< leaf boxes across all functions
  std::vector<double> norms;     ///< per-function L2 norm from the leaves
  /// Per-function L2 norm computed from the *compressed* representation:
  /// ||f||^2 = ||s_root||^2 + sum over interior boxes of ||d||^2
  /// (Parseval for the orthonormal multiwavelet basis). Must match
  /// `norms` to rounding — a strong internal-consistency check.
  std::vector<double> norms_compressed;
};

/// Runs projection + compression + reconstruction for all functions
/// concurrently on a TTG world configured by `rt`.
MraResult run_mra(const MraParams& params,
                  const std::vector<Gaussian>& functions,
                  const ttg::Config& rt);

/// A function in its compressed multiwavelet form: root scaling
/// coefficients plus difference (wavelet) coefficients per interior box.
/// Because the multiwavelet basis is orthonormal across levels, linear
/// algebra on functions reduces to algebra on these coefficient sets.
struct BoxId {
  int n, x, y, z;
  friend auto operator<=>(const BoxId&, const BoxId&) = default;
};

struct CompressedFunction {
  std::size_t k = 0;
  std::vector<double> s_root;              ///< k^3 root coefficients
  std::map<BoxId, std::vector<double>> diffs;  ///< (2k)^3 per interior box

  /// L2 norm via Parseval: ||f||^2 = ||s_root||^2 + sum ||d_b||^2.
  double norm() const;
};

/// Projects and compresses one function on a TTG pipeline, harvesting
/// the compressed tree.
CompressedFunction compress_function(const MraParams& params,
                                     const Gaussian& g,
                                     const ttg::Config& rt);

/// <f | g>: coefficients of boxes absent from one tree are zero, so the
/// inner product is the dot product over the root plus the tree
/// intersection.
double inner(const CompressedFunction& f, const CompressedFunction& g);

/// a*f + b*g in the compressed representation (union tree) — MADNESS's
/// gaxpy.
CompressedFunction gaxpy(double a, const CompressedFunction& f, double b,
                         const CompressedFunction& g);

/// Serial single-box helpers, exposed for tests.
namespace detail {

/// Projects f onto box (n; lx,ly,lz) of the unit-cube tree in simulation
/// coordinates; returns k^3 scaling coefficients.
std::vector<double> project_box(const MraParams& params, const Gaussian& g,
                                int n, int lx, int ly, int lz);

/// Filters a (2k)^3 child tensor to parent coefficients (k^3).
std::vector<double> filter(std::size_t k, const std::vector<double>& child);

/// Unfilters parent coefficients (k^3) back to the child tensor ((2k)^3).
std::vector<double> unfilter(std::size_t k,
                             const std::vector<double>& parent);

}  // namespace detail
}  // namespace mra
