#include "mra/gemm.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace mra {

void gemm(std::size_t m, std::size_t n, std::size_t k, const double* a,
          const double* b, double* c) {
  std::memset(c, 0, m * n * sizeof(double));
  gemm_acc(m, n, k, a, b, c);
}

void gemm_acc(std::size_t m, std::size_t n, std::size_t k, const double* a,
              const double* b, double* c) {
  // ikj loop order: unit-stride inner loop over both B and C rows.
  for (std::size_t i = 0; i < m; ++i) {
    double* ci = c + i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const double aip = a[i * k + p];
      if (aip == 0.0) continue;
      const double* bp = b + p * n;
      for (std::size_t j = 0; j < n; ++j) {
        ci[j] += aip * bp[j];
      }
    }
  }
}

void transform3d(const double* t, std::size_t n_in, const double* m,
                 std::size_t n_out, double* result, double* work) {
  // Each pass contracts the *leading* dimension with M and cycles that
  // axis to the back, so after three passes all dimensions are
  // transformed and the axes are back in their original order.
  //
  // One pass as GEMM: view the tensor as (lead) x (rest), compute
  // R = M * T -> (n_out) x (rest), then transpose R from [i', (j,l)]
  // to [(j,l), i'].
  const std::size_t nmax = std::max(n_in, n_out);
  const std::size_t cap = nmax * nmax * nmax;
  // src is either `t` or `pong`; gemm always writes `ping`, so a pass
  // never clobbers its own input, and the transpose may reuse `pong`
  // (the gemm already consumed it).
  double* ping = work;        // GEMM output of the current pass
  double* pong = work + cap;  // transposed output, the next pass's input

  const double* src = t;
  std::size_t lead = n_in;           // size of the contracted dimension
  std::size_t d1 = n_in, d2 = n_in;  // trailing dimension sizes
  for (int pass = 0; pass < 3; ++pass) {
    const std::size_t rest = d1 * d2;
    gemm(n_out, rest, lead, m, src, ping);
    for (std::size_t i = 0; i < n_out; ++i) {
      for (std::size_t jl = 0; jl < rest; ++jl) {
        pong[jl * n_out + i] = ping[i * rest + jl];
      }
    }
    src = pong;
    lead = d1;
    d1 = d2;
    d2 = n_out;
  }
  std::memcpy(result, src, n_out * n_out * n_out * sizeof(double));
}

double norm2(const double* v, std::size_t n) {
  double s = 0;
  for (std::size_t i = 0; i < n; ++i) s += v[i] * v[i];
  return std::sqrt(s);
}

}  // namespace mra
