#include "mra/legendre.hpp"

#include <cmath>

namespace mra {

void legendre(double x, std::size_t k, double* p) {
  if (k == 0) return;
  p[0] = 1.0;
  if (k == 1) return;
  p[1] = x;
  for (std::size_t n = 1; n + 1 < k; ++n) {
    // (n+1) P_{n+1} = (2n+1) x P_n - n P_{n-1}
    p[n + 1] = ((2.0 * n + 1.0) * x * p[n] - n * p[n - 1]) / (n + 1.0);
  }
}

void scaling_functions(double x, std::size_t k, double* p) {
  legendre(2.0 * x - 1.0, k, p);
  for (std::size_t i = 0; i < k; ++i) {
    p[i] *= std::sqrt(2.0 * i + 1.0);
  }
}

Quadrature gauss_legendre(std::size_t n) {
  Quadrature q;
  q.x.resize(n);
  q.w.resize(n);
  // Newton iteration from the Chebyshev-based initial guess; nodes of
  // P_n on [-1,1], then mapped to [0,1].
  for (std::size_t i = 0; i < n; ++i) {
    double x = std::cos(M_PI * (static_cast<double>(i) + 0.75) /
                        (static_cast<double>(n) + 0.5));
    double dp = 0;
    for (int it = 0; it < 100; ++it) {
      // Evaluate P_n and P_n' at x.
      double p0 = 1.0, p1 = x;
      for (std::size_t m = 1; m < n; ++m) {
        const double p2 =
            ((2.0 * m + 1.0) * x * p1 - m * p0) / (m + 1.0);
        p0 = p1;
        p1 = p2;
      }
      dp = n * (x * p1 - p0) / (x * x - 1.0);
      const double dx = p1 / dp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    // Map node/weight from [-1,1] to [0,1] (ascending order).
    q.x[n - 1 - i] = 0.5 * (x + 1.0);
    q.w[n - 1 - i] = 1.0 / ((1.0 - x * x) * dp * dp);
  }
  return q;
}

}  // namespace mra
