// Minimal dense double-precision GEMM and 3D tensor transforms.
//
// The MRA mini-app's per-node work is "a GEMM on 20^2 double precision
// matrices" (paper Sec. V-E): the two-scale filter applies a k x 2k
// matrix (2k = 20 for the order-10 basis) along each dimension of a
// child-assembled coefficient tensor. These kernels are deliberately
// simple — the benchmark measures task management, not BLAS — but they
// are real computations with tested numerics.
#pragma once

#include <cstddef>

namespace mra {

/// C(m x n) = A(m x k) * B(k x n), row-major, C overwritten.
void gemm(std::size_t m, std::size_t n, std::size_t k, const double* a,
          const double* b, double* c);

/// C(m x n) += A(m x k) * B(k x n).
void gemm_acc(std::size_t m, std::size_t n, std::size_t k, const double* a,
              const double* b, double* c);

/// Applies the same matrix M (n_out x n_in, row-major) along each of the
/// three dimensions of the cube tensor `t` (n_in^3):
///   result[i,j,l] = sum_{p,q,r} M[i,p] M[j,q] M[l,r] t[p,q,r]
/// `work` must hold 2 * max(n_out,n_in)^3 doubles; `result` n_out^3.
void transform3d(const double* t, std::size_t n_in, const double* m,
                 std::size_t n_out, double* result, double* work);

/// Frobenius norm of `n` doubles.
double norm2(const double* v, std::size_t n);

}  // namespace mra
