#include "mra/twoscale.hpp"

#include <cmath>
#include <map>
#include <mutex>

#include "mra/legendre.hpp"

namespace mra {

TwoScale make_two_scale(std::size_t k) {
  TwoScale ts;
  ts.k = k;
  ts.h0.assign(k * k, 0.0);
  ts.h1.assign(k * k, 0.0);

  // Integrands are polynomials of degree <= 2k-2; a (k)-point rule on
  // each half interval (degree 2k-1) is exact.
  const Quadrature q = gauss_legendre(k);
  std::vector<double> phi_parent(k);
  std::vector<double> phi_child(k);
  const double sqrt2 = std::sqrt(2.0);

  for (std::size_t qi = 0; qi < k; ++qi) {
    // Left half: x in [0, 1/2], child coordinate 2x.
    {
      const double x = 0.5 * q.x[qi];
      const double w = 0.5 * q.w[qi];
      scaling_functions(x, k, phi_parent.data());
      scaling_functions(2.0 * x, k, phi_child.data());
      for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < k; ++j) {
          ts.h0[i * k + j] += sqrt2 * w * phi_parent[i] * phi_child[j];
        }
      }
    }
    // Right half: x in [1/2, 1], child coordinate 2x - 1.
    {
      const double x = 0.5 * q.x[qi] + 0.5;
      const double w = 0.5 * q.w[qi];
      scaling_functions(x, k, phi_parent.data());
      scaling_functions(2.0 * x - 1.0, k, phi_child.data());
      for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < k; ++j) {
          ts.h1[i * k + j] += sqrt2 * w * phi_parent[i] * phi_child[j];
        }
      }
    }
  }

  // Assemble H = [h0 h1] and H^T.
  ts.h.assign(k * 2 * k, 0.0);
  ts.ht.assign(2 * k * k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      ts.h[i * 2 * k + j] = ts.h0[i * k + j];
      ts.h[i * 2 * k + k + j] = ts.h1[i * k + j];
    }
  }
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < 2 * k; ++j) {
      ts.ht[j * k + i] = ts.h[i * 2 * k + j];
    }
  }
  return ts;
}

const TwoScale& two_scale(std::size_t k) {
  static std::mutex mutex;
  static std::map<std::size_t, TwoScale> cache;
  std::lock_guard<std::mutex> guard(mutex);
  auto it = cache.find(k);
  if (it == cache.end()) {
    it = cache.emplace(k, make_two_scale(k)).first;
  }
  return it->second;
}

}  // namespace mra
