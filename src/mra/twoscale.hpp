// Two-scale (filter) relations of the multiwavelet basis.
//
// h0[i][j] = sqrt(2) * int_0^(1/2) phi_i(x) phi_j(2x)   dx
// h1[i][j] = sqrt(2) * int_(1/2)^1 phi_i(x) phi_j(2x-1) dx
//
// With H = [h0 h1] (k x 2k), the scaling coefficients of a parent box
// are s_parent = H applied to the stacked child coefficients, and
// H^T s_parent reconstructs the component of the children representable
// at the parent scale; the residual is the wavelet (difference) part
// used both for truncation decisions and for exact reconstruction.
// The rows of H are orthonormal: H H^T = I_k.
#pragma once

#include <cstddef>
#include <vector>

namespace mra {

struct TwoScale {
  std::size_t k;
  std::vector<double> h0;  // k x k, row-major
  std::vector<double> h1;  // k x k
  std::vector<double> h;   // k x 2k: [h0 h1]
  std::vector<double> ht;  // 2k x k: H^T
};

/// Computes the exact filter matrices for order-k scaling functions.
TwoScale make_two_scale(std::size_t k);

/// Per-process cache (filters are immutable once built).
const TwoScale& two_scale(std::size_t k);

}  // namespace mra
