#include "mra/mra.hpp"

#include <atomic>
#include <cmath>
#include <cstring>
#include <map>
#include <mutex>

#include "common/rng.hpp"
#include "mra/gemm.hpp"
#include "mra/legendre.hpp"
#include "mra/twoscale.hpp"
#include "structures/concurrent_map.hpp"
#include "ttg/ttg.hpp"

namespace mra {

double Gaussian::operator()(double x, double y, double z) const {
  const double dx = x - cx, dy = y - cy, dz = z - cz;
  return coeff * std::exp(-expnt * (dx * dx + dy * dy + dz * dz));
}

Gaussian Gaussian::normalized(double cx, double cy, double cz,
                              double expnt) {
  // ||exp(-a r^2)||_2^2 = (pi / (2a))^(3/2)  =>  coeff = (2a/pi)^(3/4).
  const double coeff = std::pow(2.0 * expnt / M_PI, 0.75);
  return Gaussian{cx, cy, cz, expnt, coeff};
}

std::vector<Gaussian> random_gaussians(int count, double expnt,
                                       std::uint64_t seed,
                                       const MraParams& params) {
  ttg::SplitMix64 rng(seed);
  std::vector<Gaussian> out;
  out.reserve(static_cast<std::size_t>(count));
  const double span = params.hi - params.lo;
  for (int i = 0; i < count; ++i) {
    // Inner half of the cell keeps the Gaussian mass inside the domain.
    const double cx = params.lo + span * (0.25 + 0.5 * rng.next_double());
    const double cy = params.lo + span * (0.25 + 0.5 * rng.next_double());
    const double cz = params.lo + span * (0.25 + 0.5 * rng.next_double());
    out.push_back(Gaussian::normalized(cx, cy, cz, expnt));
  }
  return out;
}

/// Box identifier: function id, level, translation. Namespace-scoped (not
/// anonymous) so ttg::KeyHash can be specialized for it.
struct BoxKey {
  std::int32_t f;
  std::int32_t n;
  std::int32_t x, y, z;

  friend bool operator==(const BoxKey&, const BoxKey&) = default;

  BoxKey parent() const { return BoxKey{f, n - 1, x / 2, y / 2, z / 2}; }
  int child_index() const { return ((x & 1) << 2) | ((y & 1) << 1) | (z & 1); }
  BoxKey child(int a, int b, int c) const {
    return BoxKey{f, n + 1, 2 * x + a, 2 * y + b, 2 * z + c};
  }
};

struct BoxKeyHash {
  std::uint64_t operator()(const BoxKey& k) const {
    std::uint64_t h = static_cast<std::uint32_t>(k.f);
    h = ttg::mix64(h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint32_t>(k.n));
    h = ttg::mix64(h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint32_t>(k.x));
    h = ttg::mix64(h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint32_t>(k.y));
    h = ttg::mix64(h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint32_t>(k.z));
    return h;
  }
};

}  // namespace mra

namespace ttg {
/// Task-ID hashing for MRA box keys.
template <>
struct KeyHash<mra::BoxKey> {
  std::uint64_t operator()(const mra::BoxKey& k) const {
    return mra::BoxKeyHash{}(k);
  }
};
}  // namespace ttg

namespace mra {

namespace {

/// Immutable per-k tables, built once: quadrature and the
/// quadrature-to-coefficient matrix A[i][q] = w_q phi_i(x_q), so that
/// s = 2^(-3n/2) (A (x) A (x) A) f_samples.
struct ProjectTables {
  Quadrature quad;
  std::vector<double> q2c;
};

const ProjectTables& project_tables(std::size_t k) {
  static std::mutex mutex;
  static std::map<std::size_t, ProjectTables> cache;
  std::lock_guard<std::mutex> guard(mutex);
  auto it = cache.find(k);
  if (it == cache.end()) {
    ProjectTables t;
    t.quad = gauss_legendre(k);
    t.q2c.resize(k * k);
    std::vector<double> phi(k);
    for (std::size_t qi = 0; qi < k; ++qi) {
      scaling_functions(t.quad.x[qi], k, phi.data());
      for (std::size_t i = 0; i < k; ++i) {
        t.q2c[i * k + qi] = t.quad.w[qi] * phi[i];
      }
    }
    it = cache.emplace(k, std::move(t)).first;
  }
  return it->second;
}

}  // namespace

namespace detail {

std::vector<double> project_box(const MraParams& params, const Gaussian& g,
                                int n, int lx, int ly, int lz) {
  const std::size_t k = params.k;
  const ProjectTables& tables = project_tables(k);
  const Quadrature& q = tables.quad;
  const double scale = std::ldexp(1.0, -n);  // box width in u-space
  const double span = params.hi - params.lo;

  // Sample g on the tensor quadrature grid of the box.
  std::vector<double> fx(k), fy(k), fz(k);
  for (std::size_t i = 0; i < k; ++i) {
    fx[i] = params.lo + span * scale * (lx + q.x[i]);
    fy[i] = params.lo + span * scale * (ly + q.x[i]);
    fz[i] = params.lo + span * scale * (lz + q.x[i]);
  }
  std::vector<double> samples(k * k * k);
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t r = 0; r < k; ++r) {
      for (std::size_t s = 0; s < k; ++s) {
        samples[(p * k + r) * k + s] = g(fx[p], fy[r], fz[s]);
      }
    }
  }

  // s = 2^(-3n/2) (A (x) A (x) A) samples.
  static thread_local std::vector<double> work;
  work.resize(2 * k * k * k);
  std::vector<double> coeffs(k * k * k);
  transform3d(samples.data(), k, tables.q2c.data(), k, coeffs.data(),
              work.data());
  const double factor = std::pow(2.0, -1.5 * n);
  for (double& c : coeffs) c *= factor;
  return coeffs;
}

std::vector<double> filter(std::size_t k, const std::vector<double>& child) {
  const TwoScale& ts = two_scale(k);
  static thread_local std::vector<double> work;
  const std::size_t kk = 2 * k;
  work.resize(2 * kk * kk * kk);
  std::vector<double> parent(k * k * k);
  transform3d(child.data(), kk, ts.h.data(), k, parent.data(), work.data());
  return parent;
}

std::vector<double> unfilter(std::size_t k,
                             const std::vector<double>& parent) {
  const TwoScale& ts = two_scale(k);
  static thread_local std::vector<double> work;
  const std::size_t kk = 2 * k;
  work.resize(2 * kk * kk * kk);
  std::vector<double> child(kk * kk * kk);
  transform3d(parent.data(), k, ts.ht.data(), kk, child.data(),
              work.data());
  return child;
}

}  // namespace detail

namespace {

/// Copies child block (a,b,c) of a (2k)^3 tensor from/to a k^3 tensor.
void put_child_block(std::size_t k, std::vector<double>& tensor, int a,
                     int b, int c, const std::vector<double>& block) {
  const std::size_t kk = 2 * k;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      std::memcpy(&tensor[((a * k + i) * kk + (b * k + j)) * kk + c * k],
                  &block[(i * k + j) * k], k * sizeof(double));
    }
  }
}

std::vector<double> get_child_block(std::size_t k,
                                    const std::vector<double>& tensor,
                                    int a, int b, int c) {
  const std::size_t kk = 2 * k;
  std::vector<double> block(k * k * k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      std::memcpy(&block[(i * k + j) * k],
                  &tensor[((a * k + i) * kk + (b * k + j)) * kk + c * k],
                  k * sizeof(double));
    }
  }
  return block;
}

using Coeffs = std::vector<double>;

struct ChildContrib {
  int child_index;
  Coeffs s;
};

}  // namespace

MraResult run_mra(const MraParams& params,
                  const std::vector<Gaussian>& functions,
                  const ttg::Config& rt) {
  const std::size_t k = params.k;
  ttg::World world(rt);

  ttg::Edge<BoxKey, ttg::Void> project_in("project");
  ttg::Edge<BoxKey, ChildContrib> compress_in("compress");
  ttg::Edge<BoxKey, Coeffs> recon_in("reconstruct");

  // Wavelet (difference) coefficients of interior boxes, consumed by
  // reconstruction.
  ttg::ConcurrentMap<BoxKey, Coeffs, BoxKeyHash> differences;

  std::atomic<std::uint64_t> project_tasks{0}, compress_tasks{0},
      reconstruct_tasks{0}, leaves{0};
  std::vector<std::atomic<double>> norm2_acc(functions.size());
  std::vector<std::atomic<double>> norm2_compressed(functions.size());
  for (auto& a : norm2_acc) a.store(0.0);
  for (auto& a : norm2_compressed) a.store(0.0);

  // Forward-declared Outs shapes make the TT types mutually reachable
  // through the shared edges; sends go through the edges, so definition
  // order does not matter.

  // A coarse box can be blind to a narrow Gaussian: every quadrature
  // point may miss the bump, making the wavelet residual spuriously
  // tiny. Boxes containing the function's center are therefore forced to
  // refine until the box width resolves the Gaussian's standard
  // deviation (the equivalent of MADNESS's special-points refinement).
  const double span = params.hi - params.lo;
  auto must_refine = [&](const BoxKey& key, const Gaussian& g) {
    const double width = span * std::ldexp(1.0, -key.n);
    const double x0 = params.lo + width * key.x;
    const double y0 = params.lo + width * key.y;
    const double z0 = params.lo + width * key.z;
    const bool contains_center =
        g.cx >= x0 && g.cx <= x0 + width && g.cy >= y0 &&
        g.cy <= y0 + width && g.cz >= z0 && g.cz <= z0 + width;
    if (!contains_center) return false;
    const double sigma_width = std::sqrt(2.0 / std::max(g.expnt, 1e-30));
    return width > sigma_width;
  };

  // --- Projection: top-down adaptive refinement. -----------------------
  auto project_tt = ttg::make_tt<BoxKey>(
      [&](const BoxKey& key, const ttg::Void&, auto& outs) {
        project_tasks.fetch_add(1, std::memory_order_relaxed);
        const Gaussian& g = functions[static_cast<std::size_t>(key.f)];
        // Project all 8 children and assemble the (2k)^3 tensor.
        Coeffs child_tensor(8 * k * k * k);
        for (int a = 0; a < 2; ++a) {
          for (int b = 0; b < 2; ++b) {
            for (int c = 0; c < 2; ++c) {
              Coeffs s = detail::project_box(params, g, key.n + 1,
                                             2 * key.x + a, 2 * key.y + b,
                                             2 * key.z + c);
              put_child_block(k, child_tensor, a, b, c, s);
            }
          }
        }
        Coeffs s_box = detail::filter(k, child_tensor);
        // Wavelet residual = child tensor minus its parent-scale part.
        Coeffs back = detail::unfilter(k, s_box);
        double dn2 = 0;
        for (std::size_t i = 0; i < child_tensor.size(); ++i) {
          const double d = child_tensor[i] - back[i];
          dn2 += d * d;
        }
        const bool refine = (std::sqrt(dn2) > params.thresh ||
                             must_refine(key, g)) &&
                            key.n < params.max_level;
        if (!refine) {
          // Accurate at this scale: `key` is a leaf with coefficients
          // s_box. Feed it to the bottom-up compression (or straight to
          // reconstruction if the whole function fit in the root box).
          leaves.fetch_add(1, std::memory_order_relaxed);
          if (key.n == 0) {
            const double n2 = norm2(s_box.data(), s_box.size());
            norm2_compressed[static_cast<std::size_t>(key.f)].fetch_add(
                n2 * n2, std::memory_order_relaxed);
            ttg::send<1>(key, std::move(s_box), outs);
          } else {
            ttg::send<0>(key.parent(),
                         ChildContrib{key.child_index(), std::move(s_box)},
                         outs);
          }
        } else {
          for (int a = 0; a < 2; ++a) {
            for (int b = 0; b < 2; ++b) {
              for (int c = 0; c < 2; ++c) {
                ttg::sendk<2>(key.child(a, b, c), outs);
              }
            }
          }
        }
      },
      ttg::edges(project_in),
      ttg::edges(compress_in, recon_in, project_in), "Project", world);
  // Deeper boxes first: depth-first unfolding bounds the frontier.
  project_tt->set_priority_fn([](const BoxKey& key) { return key.n; });

  // --- Compression: bottom-up filtering, 8 children per box. -----------
  auto compress_count = [](const BoxKey&) -> std::int32_t { return 8; };
  auto compress_tt = ttg::make_tt<BoxKey>(
      [&](const BoxKey& key, const ttg::Aggregator<ChildContrib>& contribs,
          auto& outs) {
        compress_tasks.fetch_add(1, std::memory_order_relaxed);
        Coeffs child_tensor(8 * k * k * k);
        for (const ChildContrib& cc : contribs) {
          const int a = (cc.child_index >> 2) & 1;
          const int b = (cc.child_index >> 1) & 1;
          const int c = cc.child_index & 1;
          put_child_block(k, child_tensor, a, b, c, cc.s);
        }
        Coeffs s_box = detail::filter(k, child_tensor);
        Coeffs resid = detail::unfilter(k, s_box);
        for (std::size_t i = 0; i < resid.size(); ++i) {
          resid[i] = child_tensor[i] - resid[i];
        }
        // Parseval: the difference coefficients carry exactly the norm
        // lost when filtering to the parent scale.
        const double dn = norm2(resid.data(), resid.size());
        norm2_compressed[static_cast<std::size_t>(key.f)].fetch_add(
            dn * dn, std::memory_order_relaxed);
        differences.insert(key, std::move(resid));
        if (key.n == 0) {
          const double sn = norm2(s_box.data(), s_box.size());
          norm2_compressed[static_cast<std::size_t>(key.f)].fetch_add(
              sn * sn, std::memory_order_relaxed);
          ttg::send<1>(key, std::move(s_box), outs);
        } else {
          ttg::send<0>(key.parent(),
                       ChildContrib{key.child_index(), std::move(s_box)},
                       outs);
        }
      },
      ttg::edges(ttg::make_aggregator(compress_in, compress_count)),
      ttg::edges(compress_in, recon_in), "Compress", world);
  compress_tt->set_priority_fn([](const BoxKey& key) { return -key.n; });

  // --- Reconstruction: top-down unfiltering. ----------------------------
  auto recon_tt = ttg::make_tt<BoxKey>(
      [&](const BoxKey& key, Coeffs& s, auto& outs) {
        reconstruct_tasks.fetch_add(1, std::memory_order_relaxed);
        if (auto resid = differences.take(key); resid.has_value()) {
          Coeffs child_tensor = detail::unfilter(k, s);
          for (std::size_t i = 0; i < child_tensor.size(); ++i) {
            child_tensor[i] += (*resid)[i];
          }
          for (int a = 0; a < 2; ++a) {
            for (int b = 0; b < 2; ++b) {
              for (int c = 0; c < 2; ++c) {
                ttg::send<0>(key.child(a, b, c),
                             get_child_block(k, child_tensor, a, b, c),
                             outs);
              }
            }
          }
        } else {
          // Leaf: accumulate the function's norm (coefficients are in an
          // orthonormal basis, so the L2 norm is the coefficient norm).
          const double n2 =
              norm2(s.data(), s.size()) * norm2(s.data(), s.size());
          norm2_acc[static_cast<std::size_t>(key.f)].fetch_add(
              n2, std::memory_order_relaxed);
        }
      },
      ttg::edges(recon_in), ttg::edges(recon_in), "Reconstruct", world);

  ttg::WallTimer timer;
  world.execute();
  // Seed the projection on a uniform level: boxes above it are interior
  // by construction and get their coefficients from compression.
  const int n0 = params.initial_level;
  const int boxes_per_dim = 1 << n0;
  for (std::size_t f = 0; f < functions.size(); ++f) {
    for (int x = 0; x < boxes_per_dim; ++x) {
      for (int y = 0; y < boxes_per_dim; ++y) {
        for (int z = 0; z < boxes_per_dim; ++z) {
          project_tt->sendk_input<0>(
              BoxKey{static_cast<std::int32_t>(f), n0, x, y, z});
        }
      }
    }
  }
  world.fence();

  MraResult result;
  result.seconds = timer.seconds();
  result.project_tasks = project_tasks.load();
  result.compress_tasks = compress_tasks.load();
  result.reconstruct_tasks = reconstruct_tasks.load();
  result.leaves = leaves.load();
  result.norms.reserve(functions.size());
  for (auto& a : norm2_acc) result.norms.push_back(std::sqrt(a.load()));
  result.norms_compressed.reserve(functions.size());
  for (auto& a : norm2_compressed) {
    result.norms_compressed.push_back(std::sqrt(a.load()));
  }
  (void)recon_tt;
  return result;
}

}  // namespace mra

// ---------------------------------------------------------------------------
// Compressed-function algebra (MADNESS-style gaxpy / inner products).
// ---------------------------------------------------------------------------

namespace mra {

double CompressedFunction::norm() const {
  double n2 = 0;
  if (!s_root.empty()) {
    const double n = norm2(s_root.data(), s_root.size());
    n2 += n * n;
  }
  for (const auto& [id, d] : diffs) {
    const double n = norm2(d.data(), d.size());
    n2 += n * n;
  }
  return std::sqrt(n2);
}

CompressedFunction compress_function(const MraParams& params,
                                     const Gaussian& g,
                                     const ttg::Config& rt) {
  const std::size_t k = params.k;
  ttg::World world(rt);

  ttg::Edge<BoxKey, ttg::Void> project_in("project");
  ttg::Edge<BoxKey, ChildContrib> compress_in("compress");
  ttg::Edge<BoxKey, Coeffs> root_out("root");

  CompressedFunction result;
  result.k = k;
  ttg::ConcurrentMap<BoxKey, Coeffs, BoxKeyHash> differences;

  const double span = params.hi - params.lo;
  auto must_refine = [&](const BoxKey& key) {
    const double width = span * std::ldexp(1.0, -key.n);
    const double x0 = params.lo + width * key.x;
    const double y0 = params.lo + width * key.y;
    const double z0 = params.lo + width * key.z;
    const bool contains_center =
        g.cx >= x0 && g.cx <= x0 + width && g.cy >= y0 &&
        g.cy <= y0 + width && g.cz >= z0 && g.cz <= z0 + width;
    if (!contains_center) return false;
    return width > std::sqrt(2.0 / std::max(g.expnt, 1e-30));
  };

  auto project_tt = ttg::make_tt<BoxKey>(
      [&](const BoxKey& key, const ttg::Void&, auto& outs) {
        Coeffs child_tensor(8 * k * k * k);
        for (int a = 0; a < 2; ++a) {
          for (int b = 0; b < 2; ++b) {
            for (int c = 0; c < 2; ++c) {
              Coeffs s = detail::project_box(params, g, key.n + 1,
                                             2 * key.x + a, 2 * key.y + b,
                                             2 * key.z + c);
              put_child_block(k, child_tensor, a, b, c, s);
            }
          }
        }
        Coeffs s_box = detail::filter(k, child_tensor);
        Coeffs back = detail::unfilter(k, s_box);
        double dn2 = 0;
        for (std::size_t i = 0; i < child_tensor.size(); ++i) {
          const double d = child_tensor[i] - back[i];
          dn2 += d * d;
        }
        const bool refine =
            (std::sqrt(dn2) > params.thresh || must_refine(key)) &&
            key.n < params.max_level;
        if (!refine) {
          if (key.n == 0) {
            ttg::send<1>(key, std::move(s_box), outs);
          } else {
            ttg::send<0>(key.parent(),
                         ChildContrib{key.child_index(), std::move(s_box)},
                         outs);
          }
        } else {
          for (int a = 0; a < 2; ++a) {
            for (int b = 0; b < 2; ++b) {
              for (int c = 0; c < 2; ++c) {
                ttg::sendk<2>(key.child(a, b, c), outs);
              }
            }
          }
        }
      },
      ttg::edges(project_in),
      ttg::edges(compress_in, root_out, project_in), "Project", world);
  project_tt->set_priority_fn([](const BoxKey& key) { return key.n; });

  auto compress_tt = ttg::make_tt<BoxKey>(
      [&](const BoxKey& key, const ttg::Aggregator<ChildContrib>& contribs,
          auto& outs) {
        Coeffs child_tensor(8 * k * k * k);
        for (const ChildContrib& cc : contribs) {
          put_child_block(k, child_tensor, (cc.child_index >> 2) & 1,
                          (cc.child_index >> 1) & 1, cc.child_index & 1,
                          cc.s);
        }
        Coeffs s_box = detail::filter(k, child_tensor);
        Coeffs resid = detail::unfilter(k, s_box);
        for (std::size_t i = 0; i < resid.size(); ++i) {
          resid[i] = child_tensor[i] - resid[i];
        }
        differences.insert(key, std::move(resid));
        if (key.n == 0) {
          ttg::send<1>(key, std::move(s_box), outs);
        } else {
          ttg::send<0>(key.parent(),
                       ChildContrib{key.child_index(), std::move(s_box)},
                       outs);
        }
      },
      ttg::edges(ttg::make_aggregator(compress_in,
                                      [](const BoxKey&) { return 8; })),
      ttg::edges(compress_in, root_out), "Compress", world);

  auto capture_tt = ttg::make_tt<BoxKey>(
      [&result](const BoxKey&, Coeffs& s, auto&) {
        result.s_root = std::move(s);
      },
      ttg::edges(root_out), ttg::edges(), "CaptureRoot", world);

  world.execute();
  const int n0 = params.initial_level;
  for (int x = 0; x < (1 << n0); ++x) {
    for (int y = 0; y < (1 << n0); ++y) {
      for (int z = 0; z < (1 << n0); ++z) {
        project_tt->sendk_input<0>(BoxKey{0, n0, x, y, z});
      }
    }
  }
  world.fence();

  differences.for_each_exclusive([&result](const BoxKey& key, Coeffs& d) {
    result.diffs.emplace(BoxId{key.n, key.x, key.y, key.z}, std::move(d));
  });
  (void)compress_tt;
  (void)capture_tt;
  return result;
}

double inner(const CompressedFunction& f, const CompressedFunction& g) {
  assert(f.k == g.k);
  double sum = 0;
  for (std::size_t i = 0; i < f.s_root.size(); ++i) {
    sum += f.s_root[i] * g.s_root[i];
  }
  // Wavelets of boxes present in only one tree meet zero coefficients in
  // the other; only the intersection contributes.
  auto it_f = f.diffs.begin();
  auto it_g = g.diffs.begin();
  while (it_f != f.diffs.end() && it_g != g.diffs.end()) {
    if (it_f->first < it_g->first) {
      ++it_f;
    } else if (it_g->first < it_f->first) {
      ++it_g;
    } else {
      const auto& a = it_f->second;
      const auto& b = it_g->second;
      for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
      ++it_f;
      ++it_g;
    }
  }
  return sum;
}

CompressedFunction gaxpy(double a, const CompressedFunction& f, double b,
                         const CompressedFunction& g) {
  assert(f.k == g.k);
  CompressedFunction out;
  out.k = f.k;
  out.s_root.assign(f.s_root.size(), 0.0);
  for (std::size_t i = 0; i < f.s_root.size(); ++i) {
    out.s_root[i] = a * f.s_root[i] + b * g.s_root[i];
  }
  for (const auto& [id, d] : f.diffs) {
    auto& dst = out.diffs[id];
    dst.assign(d.size(), 0.0);
    for (std::size_t i = 0; i < d.size(); ++i) dst[i] = a * d[i];
  }
  for (const auto& [id, d] : g.diffs) {
    auto& dst = out.diffs[id];
    if (dst.empty()) dst.assign(d.size(), 0.0);
    for (std::size_t i = 0; i < d.size(); ++i) dst[i] += b * d[i];
  }
  return out;
}

}  // namespace mra
