#include "runtime/parking_lot.hpp"

#include "runtime/trace.hpp"

#if defined(TTG_SIM)
#include "sim/sim.hpp"
#endif

namespace ttg {

// Out of line: parking is the cold path (a worker only gets here after
// its spin budget is exhausted), and keeping the atomic wait in one
// translation unit keeps the TSan/futex surface small.
void ParkingLot::park(Epoch observed) noexcept {
#if defined(TTG_MUTANT_PARK_IGNORE_EPOCH)
  // MUTANT: discard the caller's observed epoch and re-baseline on the
  // current one. A notify() that landed between prepare_park() and this
  // call is forgotten — the classic lost wakeup the epoch protocol
  // exists to close.
  observed = epoch_.load(std::memory_order_acquire);
#endif
  trace::record(trace::EventKind::kParkBegin, observed);
  sleepers_.fetch_add(1, std::memory_order_acq_rel);
#if defined(TTG_SIM)
  if (sim::active()) {
    // Cooperative stand-in for the futex wait: the runner deschedules
    // this virtual thread until a notify() marks it runnable again, and
    // reports a deadlock if every live thread ends up here — which is
    // exactly how the DST suite observes a lost wakeup.
    sim::wait_until("parking.park", [&] {
      return epoch_.load(std::memory_order_acquire) != observed;
    });
  } else {
    epoch_.wait(observed, std::memory_order_acquire);
  }
#else
  epoch_.wait(observed, std::memory_order_acquire);
#endif
  sleepers_.fetch_sub(1, std::memory_order_relaxed);
  trace::record(trace::EventKind::kParkEnd, observed);
}

}  // namespace ttg
