#include "runtime/parking_lot.hpp"

#include "runtime/trace.hpp"

namespace ttg {

// Out of line: parking is the cold path (a worker only gets here after
// its spin budget is exhausted), and keeping the atomic wait in one
// translation unit keeps the TSan/futex surface small.
void ParkingLot::park(Epoch observed) noexcept {
  trace::record(trace::EventKind::kParkBegin, observed);
  sleepers_.fetch_add(1, std::memory_order_acq_rel);
  epoch_.wait(observed, std::memory_order_acquire);
  sleepers_.fetch_sub(1, std::memory_order_relaxed);
  trace::record(trace::EventKind::kParkEnd, observed);
}

}  // namespace ttg
