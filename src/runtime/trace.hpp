// Structured observability (in the spirit of PaRSEC's PINS modules).
//
// When enabled, workers record spans (task bodies, idle/park intervals),
// instants (scheduler pushes/pops, steal attempts, termination-wave
// rounds) and counter samples into per-thread ring buffers. The record
// path is lock-free and wait-free: no locks, no atomic RMWs — the only
// synchronization is one relaxed load of the enable flag, so tracing a
// small-task run perturbs it minimally and the *disabled* path costs a
// single relaxed load and a predicted branch.
//
// Events carry a string-interned name id (TT name, scheduler tier) and a
// 64-bit argument (victim id, parking-lot epoch, chain length, counter
// value). Interning goes through a per-thread cache backed by a global
// table, so repeated interning of the same name never takes the global
// lock; hot paths intern once (e.g. at TT construction) and pass the id.
//
// Snapshots merge and time-sort all threads' events for offline analysis:
// CSV export, a per-thread summary (busy/idle fractions, task counts,
// dropped events after ring wrap-around), and a Chrome trace-event JSON
// writer (trace::export_chrome_json) whose output loads directly into
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// The MetricsRegistry unifies the runtime's ad-hoc counters — the
// Eq. (1) atomic-op counters, copy-pool hit/miss, scheduler steal stats —
// behind one named read-out that benches and summaries share.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ttg::trace {

enum class EventKind : std::uint8_t {
  kTaskBegin = 0,    ///< span: task body begins (name = TT name id)
  kTaskEnd,          ///< span: task body ends
  kIdleBegin,        ///< span: worker found no work
  kIdleEnd,          ///< span: worker resumed
  kMessageSent,      ///< instant: active message posted (arg = target rank)
  kMessageReceived,  ///< instant: active message delivered (arg = source)
  kPoolHit,   ///< data-copy pool allocation served from a free list
  kPoolMiss,  ///< data-copy pool allocation that hit the allocator path
  kPoolRemoteReturn,  ///< cross-domain free batch flushed home (arg = size)
  kParkBegin,      ///< span: worker blocks in the ParkingLot (arg = epoch)
  kParkEnd,        ///< span: worker woken (arg = epoch it slept on)
  kSchedPush,      ///< instant: one task pushed (name = tier, arg = worker)
  kSchedPushChain, ///< instant: sorted chain pushed (arg = chain length)
  kSchedPop,       ///< instant: task popped (name = tier, arg = worker)
  kStealAttempt,   ///< instant: local queue empty, probing victims
  kStealSuccess,   ///< instant: steal succeeded (arg = victim worker id)
  kStealBatch,     ///< instant: steal-half took a batch (arg = batch size)
  kIngressPop,     ///< instant: pop satisfied by ingress shard (arg = worker)
  kInlineExec,     ///< instant: task executed inline in discovering worker
  kBackoffStage,   ///< instant: idle-backoff ladder moved (arg = stage 0..2)
  kTermDetRound,   ///< instant: termination wave round closed (arg = round)
  kTaskFailed,     ///< instant: task body threw (name = TT, arg = worker)
  kWorldAborted,   ///< instant: run cancelled (arg = Outcome)
  kCounter,        ///< counter sample: name id + 64-bit value in arg
};

std::string_view to_string(EventKind k);

/// Event categories, a bitmask for selective recording (trace::Config).
enum Category : std::uint32_t {
  kCatTask = 1u << 0,     ///< task begin/end spans
  kCatIdle = 1u << 1,     ///< idle/park spans
  kCatMessage = 1u << 2,  ///< active-message traffic
  kCatPool = 1u << 3,     ///< copy-pool hit/miss
  kCatSched = 1u << 4,    ///< scheduler push/pop/steal
  kCatTermDet = 1u << 5,  ///< termination-detection rounds
  kCatCounter = 1u << 6,  ///< explicit counter samples
  kCatAll = 0xffffffffu,
};

/// Category a given event kind is gated by.
Category category_of(EventKind k);

/// Interned-name identifier; 0 (kNoName) means "unnamed".
using NameId = std::uint32_t;
inline constexpr NameId kNoName = 0;

/// Interns `name` and returns its stable id. First call per name takes a
/// global lock; subsequent calls from the same thread are served from a
/// thread-local cache without synchronization. Ids remain valid across
/// Session boundaries (they name *kinds* of work, not occurrences).
NameId intern(std::string_view name);

/// Resolves an interned id (empty string for kNoName / unknown ids).
std::string name_of(NameId id);

struct Event {
  std::uint64_t tsc;    ///< rdtsc timestamp
  std::uint64_t arg;    ///< event-specific payload (victim id, epoch, ...)
  NameId name;          ///< interned name id (kNoName if unnamed)
  std::uint16_t thread; ///< dense thread id
  EventKind kind;
};

/// Recording parameters for a Session.
struct Config {
  /// Per-thread ring capacity in events; older events are overwritten on
  /// wrap (and reported as dropped_events by summarize()).
  std::size_t events_per_thread = 1 << 16;
  /// Only event kinds whose category is in this mask are recorded.
  std::uint32_t categories = kCatAll;
};

/// RAII recording session: construction clears previous events and
/// enables recording, destruction disables it. Recorded events remain
/// readable (snapshot/summarize/export) after the session ends.
///
///   {
///     trace::Session session({.events_per_thread = 1 << 18});
///     run_workload();
///   }  // recording stopped
///   trace::export_chrome_json(file);
class Session {
 public:
  Session() : Session(Config{}) {}
  explicit Session(const Config& config);
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  ~Session();
};

namespace detail {
void start(const Config& config);
void stop();
}  // namespace detail

/// Deprecated shims for the pre-Session API; kept for one release.
[[deprecated("use trace::Session")]]
inline void enable(std::size_t events_per_thread = 1 << 16) {
  Config cfg;
  cfg.events_per_thread = events_per_thread;
  detail::start(cfg);
}

[[deprecated("use trace::Session")]]
inline void disable() { detail::stop(); }

bool enabled();

/// True when recording is on *and* `cat` is in the session's category
/// mask. Use to guard costly argument computation (e.g. chain lengths).
bool enabled_for(Category cat);

/// Records one event on the calling thread. No-op when disabled or when
/// the kind's category is masked out; the disabled path is one relaxed
/// load. Never blocks, never takes a lock, never performs an atomic RMW.
void record(EventKind kind, std::uint64_t arg = 0, NameId name = kNoName);

/// Records a counter sample (exported as a Chrome "C" event).
inline void counter(NameId name, std::uint64_t value) {
  record(EventKind::kCounter, value, name);
}

/// Collects all threads' events, sorted by timestamp. Call while the
/// traced workload is quiescent.
std::vector<Event> snapshot();

/// Events overwritten by ring wrap-around, per dense thread id.
std::vector<std::uint64_t> dropped_per_thread();

/// Writes snapshot() as CSV: tsc,thread,kind,name,arg.
void dump_csv(std::ostream& os);

/// Writes snapshot() as Chrome trace-event JSON (Perfetto-loadable):
/// one pid for the process, one tid per dense thread id, "X" complete
/// events for task/idle/park spans (task spans named by their TT),
/// "i" instants for scheduler/steal/termdet/message events, and "C"
/// counter tracks for ready-queue depth and copy-pool hit rate.
void export_chrome_json(std::ostream& os);

/// Per-thread aggregates derived from a snapshot.
struct ThreadSummary {
  int thread = 0;
  std::uint64_t tasks = 0;
  std::uint64_t busy_cycles = 0;   ///< sum of outermost task begin->end spans
  std::uint64_t idle_cycles = 0;   ///< sum of idle begin->end spans
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t pool_hits = 0;    ///< data-copy pool free-list recycles
  std::uint64_t pool_misses = 0;  ///< data-copy allocations off-pool
  std::uint64_t pool_remote_returns = 0;  ///< frees flushed home cross-domain
  std::uint64_t steal_attempts = 0;
  std::uint64_t steal_successes = 0;
  std::uint64_t steal_batches = 0;     ///< steal-half multi-task batches
  std::uint64_t steal_batch_tasks = 0; ///< tasks obtained in those batches
  std::uint64_t ingress_pops = 0;      ///< pops served by ingress shards
  std::uint64_t backoff_transitions = 0;  ///< idle-backoff stage moves
  /// Events lost to ring wrap-around plus begin/end events whose partner
  /// was overwritten. Unmatched spans are excluded from busy/idle sums
  /// instead of corrupting them.
  std::uint64_t dropped_events = 0;
};

std::vector<ThreadSummary> summarize();

/// Writes a human-readable run report: the per-thread summaries plus a
/// snapshot of every registered metric (see MetricsRegistry).
void write_summary(std::ostream& os);

// ---------------------------------------------------------------------
// Unified metrics

/// One named counter/gauge sample.
struct Metric {
  std::string name;
  std::uint64_t value = 0;
};

/// Process-wide registry of named metric read-outs. The runtime's
/// counter surfaces register themselves here: the Eq. (1) atomic-op
/// counters ("atomics.<category>"), the copy pool ("copy_pool.hits",
/// "copy_pool.misses", "copy_pool.heap_fallbacks"), and each live
/// ExecutionEngine ("engine.r<rank>.steal_attempts", ".steal_successes",
/// ".tasks_executed"). Benches and trace::write_summary() read the same
/// snapshot, so every figure reports the same numbers the trace carries.
///
/// Readers must be safe to invoke from any thread; reading is done under
/// the registry lock, registration/removal is O(1) amortized.
class MetricsRegistry {
 public:
  using Reader = std::function<std::uint64_t()>;

  static MetricsRegistry& instance();

  /// Registers a named reader; returns a handle for remove(). Duplicate
  /// names are allowed (e.g. two concurrent worlds); value() sums them.
  int add(std::string name, Reader reader);
  void remove(int id);

  /// Reads every registered metric, sorted by name.
  std::vector<Metric> snapshot() const;

  /// Sum of all metrics whose name equals `name` (0 if none).
  std::uint64_t value(std::string_view name) const;

 private:
  MetricsRegistry();
  struct Entry {
    int id;
    std::string name;
    Reader reader;
  };
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  int next_id_ = 0;
};

}  // namespace ttg::trace
