// Lightweight event tracing (in the spirit of PaRSEC's PINS modules).
//
// When enabled, workers record task begin/end, idle transitions, and
// active-message traffic into per-thread ring buffers — no locks, no
// atomics beyond one relaxed enable check, so tracing a small-task run
// perturbs it minimally. Snapshots merge and time-sort all threads'
// events for offline analysis (CSV export) and a summary reports
// per-thread busy fractions and task statistics.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace ttg::trace {

enum class EventKind : std::uint8_t {
  kTaskBegin = 0,
  kTaskEnd,
  kIdleBegin,
  kIdleEnd,
  kMessageSent,
  kMessageReceived,
  kPoolHit,   ///< data-copy pool allocation served from a free list
  kPoolMiss,  ///< data-copy pool allocation that hit the allocator path
};

std::string_view to_string(EventKind k);

struct Event {
  std::uint64_t tsc;      ///< rdtsc timestamp
  std::uint32_t arg;      ///< event-specific payload (e.g. target rank)
  std::uint16_t thread;   ///< dense thread id
  EventKind kind;
};

/// Enables tracing with a per-thread ring capacity (events; older events
/// are overwritten on wrap). Clears previously recorded events.
void enable(std::size_t events_per_thread = 1 << 16);

/// Disables tracing; recorded events remain readable via snapshot().
void disable();

bool enabled();

/// Records one event on the calling thread (no-op when disabled).
void record(EventKind kind, std::uint32_t arg = 0);

/// Collects all threads' events, sorted by timestamp. Call while the
/// traced workload is quiescent.
std::vector<Event> snapshot();

/// Writes snapshot() as CSV: tsc,thread,kind,arg.
void dump_csv(std::ostream& os);

/// Per-thread aggregates derived from a snapshot.
struct ThreadSummary {
  int thread = 0;
  std::uint64_t tasks = 0;
  std::uint64_t busy_cycles = 0;   ///< sum of task begin->end spans
  std::uint64_t idle_cycles = 0;   ///< sum of idle begin->end spans
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t pool_hits = 0;    ///< data-copy pool free-list recycles
  std::uint64_t pool_misses = 0;  ///< data-copy allocations off-pool
};

std::vector<ThreadSummary> summarize();

}  // namespace ttg::trace
