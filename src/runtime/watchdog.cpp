#include "runtime/watchdog.hpp"

#include <chrono>
#include <iterator>
#include <unordered_map>
#include <utility>

namespace ttg {

namespace {

/// Poll at a quarter of the quiet period, clamped to [1, 100] ms: fine
/// enough that a stall is reported within ~1.25× the configured window,
/// coarse enough that the monitor thread is invisible in any profile.
int poll_interval_ms(int quiet_ms) {
  int p = quiet_ms / 4;
  if (p < 1) p = 1;
  if (p > 100) p = 100;
  return p;
}

}  // namespace

StallWatchdog::StallWatchdog(int quiet_ms, Sampler sampler,
                             StallHandler on_stall)
    : quiet_ms_(quiet_ms),
      poll_ms_(poll_interval_ms(quiet_ms)),
      sampler_(std::move(sampler)),
      on_stall_(std::move(on_stall)),
      thread_([this] { run(); }) {}

StallWatchdog::StallWatchdog(int quiet_ms, MultiSampler sampler,
                             MultiStallHandler on_stall)
    : quiet_ms_(quiet_ms),
      poll_ms_(poll_interval_ms(quiet_ms)),
      multi_sampler_(std::move(sampler)),
      multi_on_stall_(std::move(on_stall)),
      thread_([this] { run_multi(); }) {}

StallWatchdog::~StallWatchdog() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void StallWatchdog::arm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = true;
}

void StallWatchdog::disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = false;
}

void StallWatchdog::run() {
  using clock = std::chrono::steady_clock;
  Sample last = sampler_();
  clock::time_point last_change = clock::now();
  bool reported = false;

  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(poll_ms_),
                 [this] { return stop_; });
    if (stop_) break;
    const bool armed = armed_;
    lock.unlock();

    const Sample cur = sampler_();
    const clock::time_point now = clock::now();
    if (cur.progress != last.progress || !cur.live) {
      // Progress moved (or the run went quiescent): restart the quiet
      // window and re-arm the one-shot report.
      last_change = now;
      reported = false;
    } else if (armed && !reported &&
               now - last_change >= std::chrono::milliseconds(quiet_ms_)) {
      reported = true;
      fires_.fetch_add(1, std::memory_order_relaxed);
      on_stall_();
    }
    last = cur;

    lock.lock();
  }
}

void StallWatchdog::run_multi() {
  using clock = std::chrono::steady_clock;

  // Per-World quiet window. Entries whose id vanishes from a sample
  // (the World completed or was destroyed) are dropped; a reappearing
  // id starts a fresh window.
  struct TenantTrack {
    std::uint64_t progress = 0;
    clock::time_point last_change;
    bool reported = false;
    bool seen = false;  // touched by the current sample
  };
  std::unordered_map<std::uint64_t, TenantTrack> tracks;

  MultiSample first = multi_sampler_();
  std::uint64_t engine_last = first.engine_progress;
  clock::time_point engine_change = clock::now();
  for (const TenantSample& t : first.tenants) {
    tracks[t.id] = TenantTrack{t.progress, engine_change, false, false};
  }

  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(poll_ms_),
                 [this] { return stop_; });
    if (stop_) break;
    const bool armed = armed_;
    lock.unlock();

    const MultiSample cur = multi_sampler_();
    const clock::time_point now = clock::now();
    if (cur.engine_progress != engine_last) engine_change = now;
    engine_last = cur.engine_progress;
    const bool engine_quiet =
        now - engine_change >= std::chrono::milliseconds(quiet_ms_);

    for (auto& [id, track] : tracks) track.seen = false;
    std::vector<std::uint64_t> stalled;
    for (const TenantSample& t : cur.tenants) {
      auto [it, inserted] = tracks.try_emplace(
          t.id, TenantTrack{t.progress, now, false, true});
      TenantTrack& track = it->second;
      track.seen = true;
      if (inserted) continue;
      if (t.progress != track.progress || !t.live) {
        track.progress = t.progress;
        track.last_change = now;
        track.reported = false;
      } else if (armed && !track.reported &&
                 now - track.last_change >=
                     std::chrono::milliseconds(quiet_ms_)) {
        track.reported = true;
        stalled.push_back(t.id);
      }
    }
    for (auto it = tracks.begin(); it != tracks.end();) {
      it = it->second.seen ? std::next(it) : tracks.erase(it);
    }
    if (!stalled.empty()) {
      fires_.fetch_add(1, std::memory_order_relaxed);
      multi_on_stall_(stalled, engine_quiet);
    }

    lock.lock();
  }
}

}  // namespace ttg
