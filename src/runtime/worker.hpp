// Per-worker state and the per-task execution scope.
//
// A Worker is the thread-local face of the runtime: every task body
// receives the Worker executing it. Besides identity (context, index,
// simulated rank) a worker owns the two pieces of per-thread hot-path
// state the paper's optimizations need:
//
//  * the successor-bundling scope (Sec. IV-C): tasks made eligible by
//    the currently running task body are collected into a chain sorted
//    by descending priority and handed to the scheduler in one
//    detach/merge/reattach operation when the body returns;
//  * the task-inlining nesting depth (Sec. V-E future work): eligible
//    tasks may execute directly in the discovering worker, bounded by
//    Config::inline_max_depth.
//
// Workers are created and driven by the ExecutionEngine; user code only
// reads the public accessors.
#pragma once

#include <atomic>
#include <cstdint>

#include "runtime/task.hpp"

namespace ttg {

class Context;
class ExecutionEngine;

class Worker {
 public:
  Context& context() const { return *context_; }
  int index() const { return index_; }
  int rank() const { return rank_; }

  /// Tasks executed by this worker (diagnostics; readable from any
  /// thread — the stall watchdog samples it while workers run).
  std::uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  /// Times this worker's idle-backoff ladder ended in a ParkingLot park
  /// (diagnostics; see IdleBackoff).
  std::uint64_t parks() const {
    return parks_.load(std::memory_order_relaxed);
  }

  /// Current task-inlining nesting depth on this worker.
  int inline_depth() const { return inline_depth_; }

 private:
  friend class ExecutionEngine;

  /// Executes one task with a fresh successor-bundling scope (stack
  /// discipline: inlined tasks nest) and completion accounting. Any
  /// chain still buffered when the body returns is flushed through the
  /// engine as one sorted push. At the outermost nesting level the
  /// tail-chain slot (SubmitHint::kTailChain) is then drained: each
  /// chained task runs directly — with the same cancellation-drop and
  /// fault-injection checks a scheduler pop would apply — and may chain
  /// the next, so whole ready chains execute without touching the
  /// scheduler.
  void run_task(TaskBase* task);

  /// One task body plus its epilogue (the pre-tail-chain run_task).
  void run_one(TaskBase* task);

  /// Tries to park a ready task in the one-slot tail-chain buffer.
  /// Returns false when the slot is occupied (caller falls back to the
  /// inline/bundling/deferred cascade).
  bool try_chain(TaskBase* task) {
    if (chained_ != nullptr) return false;
    chained_ = task;
    return true;
  }

  /// Executes `task` immediately on this worker, nested inside the
  /// currently running task (the inlining fast path). The caller has
  /// checked the depth limit.
  void run_inline(TaskBase* task) {
    ++inline_depth_;
    run_task(task);
    --inline_depth_;
  }

  /// Tries to absorb a newly eligible task into the open bundling scope.
  /// Returns false when the caller must push the task to the scheduler
  /// itself — either no scope is open, or this is the scope's first
  /// successor (the common single-successor chain case keeps the plain
  /// push fast path; bundling starts with the second task).
  bool try_bundle(TaskBase* task);

  /// Single-writer (this worker) relaxed bump of a counter other
  /// threads may read concurrently: a plain store, never an RMW, so the
  /// Eq. (1) atomic-operation census is unchanged.
  static void bump(std::atomic<std::uint64_t>& c) {
    c.store(c.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  }

  ExecutionEngine* engine_ = nullptr;
  Context* context_ = nullptr;
  int index_ = -1;
  int rank_ = 0;
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> parks_{0};
  int inline_depth_ = 0;
  /// run_one() nesting depth; the tail-chain drain runs only when the
  /// outermost task on this worker finishes (the slot is worker-global,
  /// so draining from a nested inline execution would reorder under the
  /// still-running outer body for no benefit).
  int nest_ = 0;
  /// One-slot tail-chain buffer (SubmitHint::kTailChain).
  TaskBase* chained_ = nullptr;
  // Successor-bundling scope (Sec. IV-C).
  TaskBase* batch_head_ = nullptr;
  int batch_size_ = 0;
  bool batch_open_ = false;
  bool batch_primed_ = false;  // first successor went straight through
};

}  // namespace ttg
