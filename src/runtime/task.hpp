// Pool-allocated task objects.
//
// A TaskBase is what flows through the schedulers: an intrusive LifoNode
// plus a function pointer. Concrete task types (the TTG layer's typed
// tasks, raw-runtime tasks in benchmarks) extend it with their payload
// and are allocated from per-thread MemoryPools (Sec. IV-E: task
// create + destroy = two atomic operations, both in the pool).
#pragma once

#include <cstdint>

#include "structures/join_counter.hpp"
#include "structures/lifo.hpp"
#include "structures/mempool.hpp"

namespace ttg {

class Worker;
class TenantState;

struct TaskBase : LifoNode {
  /// Runs the task and is responsible for releasing it (normally back to
  /// `pool`). Function pointer rather than a virtual to keep the object
  /// trivially poolable and one indirection cheaper.
  void (*execute)(TaskBase*, Worker&) = nullptr;
  /// Releases the task *without* running it (cooperative cancellation:
  /// release held input copies, destroy, return storage to `pool`).
  /// When null the runtime falls back to pool->deallocate() — correct
  /// only for tasks that own no other resources.
  void (*cancel)(TaskBase*) = nullptr;
  /// Null for arena-resident replay records (ttg/graph_template.hpp):
  /// their storage belongs to a ReplayInstance and must never reach
  /// MemoryPool::deallocate.
  MemoryPool* pool = nullptr;
  /// Interned trace name (trace::intern) of the task's origin — its TT
  /// for TTG tasks; 0 leaves the span unnamed ("task").
  std::uint32_t trace_name = 0;
  /// Template-slot id for recorded/replayed epochs; -1 on the dynamic
  /// path.
  std::int32_t slot_id = -1;
  /// Owning tenant World's state when the task belongs to a lightweight
  /// World on a shared Runtime engine (docs/serving.md); null on the
  /// classic single-World path, where completion/cancellation accounting
  /// goes through the termination detector instead.
  TenantState* tenant = nullptr;
  /// Outstanding-delivery counter for replay epochs; unused (zero) on
  /// the dynamic path, where readiness is tracked in the pending table.
  JoinCounter join;
};

}  // namespace ttg
