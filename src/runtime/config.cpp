#include "runtime/config.hpp"

#include <sstream>

#include "sync/bravo.hpp"

namespace ttg {

Config Config::original() {
  Config c;
  c.scheduler = SchedulerType::kLFQ;
  c.termdet = TermDetMode::kProcessAtomic;
  c.biased_rwlock = false;
  c.ordering = OrderingMode::kSeqCst;
  return c;
}

Config Config::optimized() {
  Config c;
  c.scheduler = SchedulerType::kLLP;
  c.termdet = TermDetMode::kThreadLocal;
  c.biased_rwlock = true;
  c.ordering = OrderingMode::kOptimized;
  return c;
}

void Config::apply_globals() const {
  set_ordering_mode(ordering);
  set_bravo_enabled(biased_rwlock);
}

std::string Config::describe() const {
  std::ostringstream os;
  os << "threads=" << threads() << " sched=" << to_string(scheduler)
     << " termdet="
     << (termdet == TermDetMode::kThreadLocal ? "thread-local"
                                              : "process-atomic")
     << " rwlock=" << (biased_rwlock ? "bravo" : "plain") << " ordering="
     << (ordering == OrderingMode::kOptimized ? "relaxed" : "seq_cst");
  if (!bundle_successors) os << " bundling=off";
  if (inline_max_depth > 0) os << " inline=" << inline_max_depth;
  if (watchdog_quiet_ms > 0) os << " watchdog=" << watchdog_quiet_ms << "ms";
  return os.str();
}

}  // namespace ttg
