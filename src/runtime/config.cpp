#include "runtime/config.hpp"

#include <cstdlib>
#include <cstring>
#include <sstream>

#include "structures/mempool.hpp"
#include "sync/bravo.hpp"

namespace ttg {

PendingTableMode default_pending_table_mode() {
  const char* env = std::getenv("TTG_PENDING_TABLE");
  if (env != nullptr && std::strcmp(env, "delegated") == 0) {
    return PendingTableMode::kDelegated;
  }
  return PendingTableMode::kBucketLock;
}

bool default_numa_pools() {
  const char* env = std::getenv("TTG_NUMA_POOLS");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

Config Config::original() {
  Config c;
  c.scheduler = SchedulerType::kLFQ;
  c.termdet = TermDetMode::kProcessAtomic;
  c.biased_rwlock = false;
  c.ordering = OrderingMode::kSeqCst;
  return c;
}

Config Config::optimized() {
  Config c;
  c.scheduler = SchedulerType::kLLP;
  c.termdet = TermDetMode::kThreadLocal;
  c.biased_rwlock = true;
  c.ordering = OrderingMode::kOptimized;
  return c;
}

void Config::apply_globals() const {
  set_ordering_mode(ordering);
  set_bravo_enabled(biased_rwlock);
  MemoryPool::set_numa_enabled(numa_pools);
}

std::string Config::describe() const {
  std::ostringstream os;
  os << "threads=" << threads() << " sched=" << to_string(scheduler)
     << " termdet="
     << (termdet == TermDetMode::kThreadLocal ? "thread-local"
                                              : "process-atomic")
     << " rwlock=" << (biased_rwlock ? "bravo" : "plain") << " ordering="
     << (ordering == OrderingMode::kOptimized ? "relaxed" : "seq_cst");
  if (!bundle_successors) os << " bundling=off";
  if (inline_max_depth > 0) os << " inline=" << inline_max_depth;
  if (watchdog_quiet_ms > 0) os << " watchdog=" << watchdog_quiet_ms << "ms";
  if (pending_table == PendingTableMode::kDelegated) os << " pending=delegated";
  if (!numa_pools) os << " numa_pools=off";
  // Discovered topology and the shard→domain map the workers, pools and
  // ingress shards share.
  const Topology& topo = topology();
  os << " topo=" << topo.num_domains << "x"
     << (topo.num_domains > 0 ? topo.num_cpus / topo.num_domains
                              : topo.num_cpus)
     << (topo.from_sysfs ? "" : "(flat)");
  const int dsize = resolved_steal_domain_size();
  os << " domain_size=" << dsize;
  if (dsize > 1) {
    const int nw = threads();
    const int shards = (nw + dsize - 1) / dsize;
    os << " shard_domains=";
    for (int s = 0; s < shards; ++s) {
      if (s > 0) os << ',';
      os << worker_domain(s * dsize, dsize);
    }
  }
  return os.str();
}

}  // namespace ttg
