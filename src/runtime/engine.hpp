// ExecutionEngine: the worker loop and the single task-submission path.
//
// The engine owns everything that moves tasks: the scheduler, the worker
// threads (and their Worker state), and the ParkingLot idle workers
// sleep on. Context is a thin façade over one engine; the TTG layer,
// the PTG front-end and the benchmarks all submit through exactly one
// entry point — submit(task, SubmitHint) — so the spawn→schedule→
// execute→release hot path has one audited code shape (Sec. IV).
//
// Submission hints:
//   kDeferred  — always hand the task to the scheduler (the safe
//                default; also the only legal hint from threads outside
//                the pool).
//   kChain     — `task` heads a descending-priority-sorted chain linked
//                through LifoNode::next; the scheduler ingests it in one
//                operation (Sec. IV-C bulk insertion).
//   kMayInline — the task may run immediately on the submitting worker
//                (Config::inline_max_depth) or join the worker's open
//                successor bundle; falls back to a deferred push.
//   kTailChain — the task is ready *now* and may occupy the submitting
//                worker's one-slot tail-chain buffer: the worker runs it
//                directly after the current task's epilogue, skipping
//                the scheduler round-trip entirely (replay epochs,
//                where readiness is a plain join-counter decrement).
//                Falls back to kMayInline when the slot is taken or the
//                submitter is not a pool worker.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "common/cache.hpp"
#include "runtime/config.hpp"
#include "runtime/fault.hpp"
#include "runtime/parking_lot.hpp"
#include "runtime/task.hpp"
#include "runtime/tenant.hpp"
#include "runtime/worker.hpp"
#include "sched/scheduler.hpp"
#include "termdet/termdet.hpp"

namespace ttg {

class Context;
class TimerWheel;

enum class SubmitHint : std::uint8_t {
  kDeferred = 0,  ///< always through the scheduler
  kChain,         ///< sorted chain; one scheduler operation
  kMayInline,     ///< may inline or bundle on the submitting worker
  kTailChain,     ///< may tail-chain on the submitting worker (replay)
};

/// Adaptive idle backoff: spin → cpu_relax ramp → yield → park.
///
/// Replaces the fixed 64-spin park gate. The spin budget adapts to
/// recent success: finding work *during the spin stage* doubles the
/// budget (spinning is paying off — keep wake-up latency minimal, up to
/// kMaxSpinBudget), while reaching the park stage halves it (this
/// worker is starved — free the core quickly, down to kMinSpinBudget).
/// Any found work resets the ladder to the spin stage. Pure state
/// machine, one instance per worker, never shared across threads.
class IdleBackoff {
 public:
  enum class Action : std::uint8_t { kSpin = 0, kYield = 1, kPark = 2 };

  static constexpr int kMinSpinBudget = 16;
  static constexpr int kMaxSpinBudget = 256;
  static constexpr int kInitialSpinBudget = 64;  ///< the old fixed gate
  static constexpr int kYieldRounds = 8;
  /// Every this-many spin rounds the worker also yields. Pure pause
  /// spinning minimizes wake-up latency on dedicated cores but starves
  /// runnable siblings when threads outnumber cores (a submitter
  /// seeding the next epoch, an oversubscribed run): bounding the
  /// starvation window to a few spin rounds costs one syscall per
  /// kSpinYieldEvery rounds and keeps the ladder safe on both.
  static constexpr int kSpinYieldEvery = 4;

  /// Advances the ladder by one empty poll round and returns what the
  /// worker should do for it.
  Action next() noexcept {
    const int r = round_++;
    if (r < spin_budget_) return Action::kSpin;
    if (r < spin_budget_ + kYieldRounds) return Action::kYield;
    return Action::kPark;
  }

  /// cpu_relax() repetitions for the current kSpin round: exponential
  /// ramp 1, 2, 4, ... capped at 64 pauses.
  int relax_count() const noexcept {
    const int r = round_ > 0 ? round_ - 1 : 0;
    return 1 << (r < 6 ? r : 6);
  }

  /// Whether the current kSpin round should also yield (see
  /// kSpinYieldEvery). Call after next().
  bool spin_round_yields() const noexcept {
    return round_ % kSpinYieldEvery == 0;
  }

  /// The worker found work (pop or progress drain succeeded).
  void on_work() noexcept {
    if (round_ > 0 && round_ <= spin_budget_) {
      spin_budget_ = spin_budget_ * 2 <= kMaxSpinBudget ? spin_budget_ * 2
                                                        : kMaxSpinBudget;
    }
    round_ = 0;
  }

  /// The ladder ended in an actual park: the spin budget was wasted.
  void on_park() noexcept {
    spin_budget_ = spin_budget_ / 2 >= kMinSpinBudget ? spin_budget_ / 2
                                                      : kMinSpinBudget;
    round_ = 0;
  }

  int spin_budget() const noexcept { return spin_budget_; }

 private:
  int round_ = 0;
  int spin_budget_ = kInitialSpinBudget;
};

/// Source of non-task work (e.g. the simulated-rank active-message
/// queue) polled by workers that found no task. drain() must account
/// any discovered work through the termination detector itself.
class ProgressSource {
 public:
  virtual ~ProgressSource() = default;
  virtual bool empty() = 0;
  virtual void drain(Worker& worker) = 0;
};

class ExecutionEngine {
 public:
  /// Bundled-successor chains flush early at this size so a very wide
  /// fan-out does not starve other workers of stealable tasks.
  static constexpr int kMaxBatch = 16;

  /// Creates the scheduler and starts the worker threads. `owner` is the
  /// façade handed to task bodies via Worker::context(); `detector` and
  /// `fault` are borrowed and must outlive the engine.
  ExecutionEngine(Context& owner, const Config& config,
                  TerminationDetector& detector, FaultState& fault,
                  int rank);
  ExecutionEngine(const ExecutionEngine&) = delete;
  ExecutionEngine& operator=(const ExecutionEngine&) = delete;
  ~ExecutionEngine();

  /// Worker currently running on this thread, or nullptr for external
  /// threads (e.g. the application's main thread).
  static Worker* current_worker();

  /// The one submission entry point; see the file comment for hints.
  /// The task must already be accounted as discovered.
  void submit(TaskBase* task, SubmitHint hint);

  /// Wakes parked workers; called automatically on submit.
  void notify_work() { parking_.notify(); }

  int num_threads() const { return num_threads_; }
  int rank() const { return rank_; }
  Scheduler& scheduler() { return *scheduler_; }
  TerminationDetector& detector() { return *detector_; }
  FaultState& fault() { return *fault_; }

  /// The engine's parking lot for time-suspended coroutine continuations
  /// (runtime/timer_wheel.hpp). One wheel per engine — its monitor thread
  /// starts lazily on the first suspend_until, so engines that never
  /// park a timer pay nothing. Due continuations come back through
  /// submit(task, kDeferred).
  TimerWheel& timers() { return *timers_; }

  /// Total tasks executed by all workers since construction.
  std::uint64_t total_tasks_executed() const;

  /// Tasks whose body threw (captured, not terminated) plus injected
  /// throws, and tasks dropped by cooperative cancellation.
  std::uint64_t failed_tasks() const {
    return failed_tasks_.load(std::memory_order_relaxed);
  }
  std::uint64_t cancelled_tasks() const {
    return cancelled_tasks_.load(std::memory_order_relaxed);
  }

  /// Workers currently parked (racy; stall-watchdog diagnostics).
  int parked_workers() const { return parking_.sleepers(); }

  /// Captures a task-body exception into the owning FaultState (first
  /// error wins) and cancels that run — the engine-wide state for
  /// classic tasks, `tenant`'s for tenant-tagged tasks. Called by
  /// Worker::run_task's catch.
  void report_task_failure(std::exception_ptr ep, std::uint32_t span_name,
                           int worker, TenantState* tenant = nullptr);

  /// Installs (or clears, with nullptr) a seeded fault-injection plan,
  /// applied at task pop boundaries. Install while quiescent; the plan
  /// must outlive the run.
  void set_fault_plan(const FaultPlan* plan) {
    fault_plan_.store(plan, std::memory_order_release);
  }

  /// Installs a progress source. Must be set before work is submitted
  /// and outlive the engine (or be reset to nullptr while quiescent).
  void set_progress_source(ProgressSource* source) {
    progress_.store(source, std::memory_order_release);
  }

 private:
  friend class Worker;

  /// The fault state governing `task`: its tenant World's when tagged
  /// (docs/serving.md), the engine-wide one otherwise. One extra
  /// pointer test on the pop/ingress cancellation check; still no RMW.
  FaultState& fault_for(const TaskBase* task) const {
    return task->tenant != nullptr ? task->tenant->fault : *fault_;
  }

  void worker_main(int index);

  /// Hands a descending-priority-sorted chain to the scheduler on behalf
  /// of `worker_index` and wakes sleepers (bundle flush path).
  void flush_chain(int worker_index, TaskBase* head);

  /// Releases a task dropped by cooperative cancellation (cancel hook or
  /// pool) and accounts it as a cancelled completion so the termination
  /// wave converges.
  void drop_cancelled(TaskBase* task);

  /// Applies the installed FaultPlan to a freshly popped task. Returns
  /// true when the task was consumed by an injected throw (the caller
  /// must not run it); may also sleep (injected delay).
  bool inject_fault(TaskBase* task, int worker_index);

  bool bundling_enabled() const { return bundle_successors_; }

  const int num_threads_;
  const int rank_;
  const int inline_max_depth_;
  const bool bundle_successors_;
  /// Resolved workers-per-domain (Config::resolved_steal_domain_size):
  /// the shared placement map for worker domains, pools and shards.
  int steal_domain_size_ = 0;
  /// Interned scheduler-tier name ("LFQ"/"LL"/"LLP"/...), attached to
  /// every sched push/pop trace instant.
  std::uint32_t sched_trace_name_ = 0;
  /// MetricsRegistry handles for this engine's read-outs (steal stats,
  /// tasks executed); removed on destruction.
  std::vector<int> metric_ids_;

  TerminationDetector* detector_;
  FaultState* fault_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<TimerWheel> timers_;

  std::vector<std::thread> threads_;
  std::unique_ptr<CachePadded<Worker>[]> workers_;
  /// Per-worker fault-injection draw counters (stateless splitmix draw
  /// keyed on plan seed × worker × counter); padded so concurrent
  /// injection never false-shares.
  std::unique_ptr<CachePadded<std::uint64_t>[]> fault_draws_;

  std::atomic<ProgressSource*> progress_{nullptr};
  std::atomic<const FaultPlan*> fault_plan_{nullptr};
  std::atomic<std::uint64_t> failed_tasks_{0};
  std::atomic<std::uint64_t> cancelled_tasks_{0};
  std::atomic<bool> stop_{false};
  ParkingLot parking_;
};

}  // namespace ttg
