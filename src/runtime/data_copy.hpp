// Reference-counted data copies (paper Sec. IV-E).
//
// Data flowing along TTG edges is held in DataCopy objects managed by the
// runtime, not by user code. A copy is shared read-only between any
// number of consumer tasks via its reference count ("two additional
// atomic operations are required on the reference count of the copy ...
// one while retaining the copy and one while releasing it"). A new copy
// is only materialized when the data must be assumed mutable by two
// different tasks — the runtime applies the paper's ownership-move
// optimization when the sender is the final owner.
//
// Copies live in per-thread size-class MemoryPools (runtime/copy_pool):
// make_copy() pops storage from the calling thread's free list and the
// final release() pushes it back to the allocating thread's list, so the
// copy lifecycle costs the same two pool atomics as a task object
// instead of a malloc/free pair.
#pragma once

#include <atomic>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "atomics/op_counter.hpp"
#include "atomics/ordering.hpp"
#include "runtime/copy_pool.hpp"

namespace ttg {

template <typename T>
class DataCopy;
template <typename T, typename U>
DataCopy<T>* make_copy(U&& value);
template <typename T, typename U>
DataCopy<T>* make_copy_in(CopyArena& arena, U&& value);

class DataCopyBase {
 public:
  DataCopyBase() = default;
  DataCopyBase(const DataCopyBase&) = delete;
  DataCopyBase& operator=(const DataCopyBase&) = delete;
  virtual ~DataCopyBase() = default;

  /// Adds `n` references. One atomic RMW regardless of n.
  void retain(std::int32_t n = 1) noexcept {
    atomic_ops::count(AtomicOpCategory::kRefCount);
    refcount_.fetch_add(n, ord_relaxed());
  }

  /// Drops one reference; the last release destroys the value and
  /// returns the storage to the pool it came from (or the heap for
  /// oversized fallback allocations — never `delete this`).
  void release() noexcept {
    if (arena_) {
      // Epoch-arena copy (replay): the value type is trivially
      // destructible and the storage is reclaimed wholesale at the next
      // epoch reset, so the final release needs no destructor and no
      // free — and when the caller holds the only reference, no RMW
      // either (nobody else can touch a count of 1).
      if (refcount_.load(std::memory_order_relaxed) == 1) return;
      atomic_ops::count(AtomicOpCategory::kRefCount);
      refcount_.fetch_sub(1, ord_relaxed());
      return;
    }
    atomic_ops::count(AtomicOpCategory::kRefCount);
    if (refcount_.fetch_sub(1, ord_acq_rel()) == 1) {
      fence_acquire();
      // Capture the storage identity before the destructor runs.
      void* storage = dynamic_cast<void*>(this);
      MemoryPool* pool = pool_;
      const std::size_t align = align_;
      this->~DataCopyBase();  // virtual: destroys the derived copy
      detail::copy_free(storage, pool, align);
    }
  }

  /// True if the caller holds the only reference — the precondition for
  /// the zero-copy ownership move ("certain optimizations are applied if
  /// the current task is the final owner").
  bool unique() const noexcept {
    return refcount_.load(std::memory_order_acquire) == 1;
  }

  std::int32_t use_count() const noexcept {
    return refcount_.load(std::memory_order_relaxed);
  }

 private:
  template <typename T, typename U>
  friend DataCopy<T>* make_copy(U&& value);
  template <typename T, typename U>
  friend DataCopy<T>* make_copy_in(CopyArena& arena, U&& value);

  std::atomic<std::int32_t> refcount_{1};
  std::uint32_t align_ = alignof(std::max_align_t);
  MemoryPool* pool_ = nullptr;  ///< owning size-class pool; null = heap
  bool arena_ = false;  ///< replay epoch arena resident (no free at all)
};

/// Typed copy. Created with refcount 1, owned by whoever holds that
/// reference.
template <typename T>
class DataCopy final : public DataCopyBase {
 public:
  template <typename... Args>
  explicit DataCopy(Args&&... args) : value_(std::forward<Args>(args)...) {}

  T& value() noexcept { return value_; }
  const T& value() const noexcept { return value_; }

 private:
  T value_;
};

/// Allocates a fresh copy holding `value` from the calling thread's
/// copy pool (one free-list atomic on a hit; a pool miss is the
/// allocator traffic the paper charges to copy creation).
template <typename T, typename U>
DataCopy<T>* make_copy(U&& value) {
  using Copy = DataCopy<T>;
  MemoryPool* pool = nullptr;
  void* mem = detail::copy_alloc(sizeof(Copy), alignof(Copy), pool);
  Copy* copy;
  try {
    copy = new (mem) Copy(std::forward<U>(value));
  } catch (...) {
    detail::copy_free(mem, pool, alignof(Copy));
    throw;
  }
  copy->pool_ = pool;
  copy->align_ = alignof(Copy);
  return copy;
}

/// Allocates a copy from a replay epoch arena: cursor arithmetic, no
/// pool atomics, and no per-copy free (the arena is reset wholesale
/// when the next epoch begins). Only legal for trivially destructible
/// T — the final release never runs a destructor. A throwing T
/// constructor merely strands the arena bytes until the next reset.
template <typename T, typename U>
DataCopy<T>* make_copy_in(CopyArena& arena, U&& value) {
  static_assert(std::is_trivially_destructible_v<T>,
                "arena copies are reclaimed without destruction");
  using Copy = DataCopy<T>;
  void* mem = arena.alloc(sizeof(Copy), alignof(Copy));
  Copy* copy = new (mem) Copy(std::forward<U>(value));
  copy->arena_ = true;
  return copy;
}

}  // namespace ttg
