// Reference-counted data copies (paper Sec. IV-E).
//
// Data flowing along TTG edges is held in DataCopy objects managed by the
// runtime, not by user code. A copy is shared read-only between any
// number of consumer tasks via its reference count ("two additional
// atomic operations are required on the reference count of the copy ...
// one while retaining the copy and one while releasing it"). A new copy
// is only materialized when the data must be assumed mutable by two
// different tasks — the runtime applies the paper's ownership-move
// optimization when the sender is the final owner.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "atomics/op_counter.hpp"
#include "atomics/ordering.hpp"

namespace ttg {

class DataCopyBase {
 public:
  DataCopyBase() = default;
  DataCopyBase(const DataCopyBase&) = delete;
  DataCopyBase& operator=(const DataCopyBase&) = delete;
  virtual ~DataCopyBase() = default;

  /// Adds `n` references. One atomic RMW regardless of n.
  void retain(std::int32_t n = 1) noexcept {
    atomic_ops::count(AtomicOpCategory::kRefCount);
    refcount_.fetch_add(n, ord_relaxed());
  }

  /// Drops one reference and destroys the copy when it was the last.
  void release() noexcept {
    atomic_ops::count(AtomicOpCategory::kRefCount);
    if (refcount_.fetch_sub(1, ord_acq_rel()) == 1) {
      fence_acquire();
      delete this;
    }
  }

  /// True if the caller holds the only reference — the precondition for
  /// the zero-copy ownership move ("certain optimizations are applied if
  /// the current task is the final owner").
  bool unique() const noexcept {
    return refcount_.load(std::memory_order_acquire) == 1;
  }

  std::int32_t use_count() const noexcept {
    return refcount_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int32_t> refcount_{1};
};

/// Typed copy. Created with refcount 1, owned by whoever holds that
/// reference.
template <typename T>
class DataCopy final : public DataCopyBase {
 public:
  template <typename... Args>
  explicit DataCopy(Args&&... args) : value_(std::forward<Args>(args)...) {}

  T& value() noexcept { return value_; }
  const T& value() const noexcept { return value_; }

 private:
  T value_;
};

/// Allocates a fresh copy holding `value`. The underlying `new` is the
/// "at least one atomic operation in the underlying system allocator"
/// the paper charges to copy creation.
template <typename T, typename U>
DataCopy<T>* make_copy(U&& value) {
  return new DataCopy<T>(std::forward<U>(value));
}

}  // namespace ttg
