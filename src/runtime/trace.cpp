#include "runtime/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <unordered_map>

#include "atomics/op_counter.hpp"
#include "common/cycle_clock.hpp"
#include "common/thread_id.hpp"
#include "common/topology.hpp"
#include "runtime/copy_pool.hpp"
#include "structures/hash_table.hpp"

namespace ttg::trace {

std::string_view to_string(EventKind k) {
  switch (k) {
    case EventKind::kTaskBegin: return "task_begin";
    case EventKind::kTaskEnd: return "task_end";
    case EventKind::kIdleBegin: return "idle_begin";
    case EventKind::kIdleEnd: return "idle_end";
    case EventKind::kMessageSent: return "msg_sent";
    case EventKind::kMessageReceived: return "msg_recv";
    case EventKind::kPoolHit: return "pool_hit";
    case EventKind::kPoolMiss: return "pool_miss";
    case EventKind::kPoolRemoteReturn: return "pool_remote_return";
    case EventKind::kParkBegin: return "park_begin";
    case EventKind::kParkEnd: return "park_end";
    case EventKind::kSchedPush: return "sched_push";
    case EventKind::kSchedPushChain: return "sched_push_chain";
    case EventKind::kSchedPop: return "sched_pop";
    case EventKind::kStealAttempt: return "steal_attempt";
    case EventKind::kStealSuccess: return "steal_success";
    case EventKind::kStealBatch: return "steal_batch";
    case EventKind::kIngressPop: return "ingress_pop";
    case EventKind::kInlineExec: return "inline_exec";
    case EventKind::kBackoffStage: return "backoff_stage";
    case EventKind::kTermDetRound: return "termdet_round";
    case EventKind::kTaskFailed: return "task_failed";
    case EventKind::kWorldAborted: return "world_aborted";
    case EventKind::kCounter: return "counter";
  }
  return "?";
}

Category category_of(EventKind k) {
  switch (k) {
    case EventKind::kTaskBegin:
    case EventKind::kTaskEnd:
    case EventKind::kInlineExec:
    case EventKind::kTaskFailed:
    case EventKind::kWorldAborted:
      return kCatTask;
    case EventKind::kIdleBegin:
    case EventKind::kIdleEnd:
    case EventKind::kParkBegin:
    case EventKind::kParkEnd:
      return kCatIdle;
    case EventKind::kMessageSent:
    case EventKind::kMessageReceived:
      return kCatMessage;
    case EventKind::kPoolHit:
    case EventKind::kPoolMiss:
    case EventKind::kPoolRemoteReturn:
      return kCatPool;
    case EventKind::kSchedPush:
    case EventKind::kSchedPushChain:
    case EventKind::kSchedPop:
    case EventKind::kStealAttempt:
    case EventKind::kStealSuccess:
    case EventKind::kStealBatch:
    case EventKind::kIngressPop:
      return kCatSched;
    case EventKind::kBackoffStage:
      return kCatIdle;
    case EventKind::kTermDetRound:
      return kCatTermDet;
    case EventKind::kCounter:
      return kCatCounter;
  }
  return kCatAll;
}

namespace {

struct ThreadRing {
  std::unique_ptr<Event[]> events;
  std::size_t capacity = 0;
  std::size_t count = 0;  // total recorded (wraps logically, not stored)
};

ThreadRing g_rings[kMaxThreads];
std::atomic<bool> g_enabled{false};
std::atomic<std::uint32_t> g_categories{kCatAll};
std::atomic<std::size_t> g_capacity{0};

// --- name interning ---------------------------------------------------
// The global table assigns ids under a mutex; a per-thread cache makes
// re-interning the same name lock-free. Never cleared: ids name kinds of
// work (TT names, scheduler tiers) and stay valid across sessions.

struct InternTable {
  std::mutex mutex;
  std::vector<std::string> names{std::string()};  // id 0 = unnamed
  std::unordered_map<std::string, NameId> ids;
};

InternTable& intern_table() {
  static InternTable table;
  return table;
}

}  // namespace

NameId intern(std::string_view name) {
  if (name.empty()) return kNoName;
  thread_local std::unordered_map<std::string, NameId> t_cache;
  const std::string key(name);
  if (auto it = t_cache.find(key); it != t_cache.end()) return it->second;
  InternTable& table = intern_table();
  NameId id;
  {
    std::lock_guard<std::mutex> lock(table.mutex);
    if (auto it = table.ids.find(key); it != table.ids.end()) {
      id = it->second;
    } else {
      id = static_cast<NameId>(table.names.size());
      table.names.push_back(key);
      table.ids.emplace(key, id);
    }
  }
  t_cache.emplace(key, id);
  return id;
}

std::string name_of(NameId id) {
  InternTable& table = intern_table();
  std::lock_guard<std::mutex> lock(table.mutex);
  if (id >= table.names.size()) return std::string();
  return table.names[id];
}

// --- session control --------------------------------------------------

namespace detail {

void start(const Config& config) {
  g_enabled.store(false, std::memory_order_relaxed);
  g_categories.store(config.categories, std::memory_order_relaxed);
  g_capacity.store(config.events_per_thread, std::memory_order_relaxed);
  for (auto& ring : g_rings) {
    ring.events.reset();
    ring.capacity = 0;
    ring.count = 0;
  }
  g_enabled.store(true, std::memory_order_release);
}

void stop() { g_enabled.store(false, std::memory_order_relaxed); }

}  // namespace detail

Session::Session(const Config& config) { detail::start(config); }
Session::~Session() { detail::stop(); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

bool enabled_for(Category cat) {
  return enabled() &&
         (g_categories.load(std::memory_order_relaxed) & cat) != 0;
}

void record(EventKind kind, std::uint64_t arg, NameId name) {
  if (!enabled()) return;
  if ((g_categories.load(std::memory_order_relaxed) &
       category_of(kind)) == 0) {
    return;
  }
  const int tid = this_thread::id();
  ThreadRing& ring = g_rings[tid];
  if (ring.capacity == 0) {
    // First event on this thread since start(): allocate lazily so
    // uninvolved threads cost nothing.
    const std::size_t cap = g_capacity.load(std::memory_order_relaxed);
    if (cap == 0) return;
    ring.events = std::make_unique<Event[]>(cap);
    ring.capacity = cap;
    ring.count = 0;
  }
  Event& e = ring.events[ring.count % ring.capacity];
  e.tsc = rdtsc();
  e.arg = arg;
  e.name = name;
  e.thread = static_cast<std::uint16_t>(tid);
  e.kind = kind;
  ++ring.count;
}

std::vector<Event> snapshot() {
  std::vector<Event> out;
  const int n = this_thread::id_count();
  for (int t = 0; t < n; ++t) {
    const ThreadRing& ring = g_rings[t];
    const std::size_t kept = std::min(ring.count, ring.capacity);
    for (std::size_t i = 0; i < kept; ++i) {
      out.push_back(ring.events[i]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.tsc < b.tsc; });
  return out;
}

std::vector<std::uint64_t> dropped_per_thread() {
  std::vector<std::uint64_t> out(
      static_cast<std::size_t>(this_thread::id_count()), 0);
  for (std::size_t t = 0; t < out.size(); ++t) {
    const ThreadRing& ring = g_rings[t];
    if (ring.count > ring.capacity) out[t] = ring.count - ring.capacity;
  }
  return out;
}

void dump_csv(std::ostream& os) {
  os << "tsc,thread,kind,name,arg\n";
  for (const Event& e : snapshot()) {
    os << e.tsc << ',' << e.thread << ',' << to_string(e.kind) << ','
       << name_of(e.name) << ',' << e.arg << '\n';
  }
}

// --- summary ----------------------------------------------------------

std::vector<ThreadSummary> summarize() {
  const auto events = snapshot();
  const auto dropped = dropped_per_thread();
  std::vector<ThreadSummary> per_thread(
      static_cast<std::size_t>(this_thread::id_count()));
  // Span matching state per thread. Task spans nest (task inlining), so
  // busy time is the outermost span only; a begin whose end was lost to
  // ring wrap (or vice versa) counts as dropped instead of corrupting
  // the cycle sums.
  std::vector<int> task_depth(per_thread.size(), 0);
  std::vector<std::uint64_t> task_begin(per_thread.size(), 0);
  std::vector<int> idle_depth(per_thread.size(), 0);
  std::vector<std::uint64_t> idle_begin(per_thread.size(), 0);
  for (std::size_t i = 0; i < per_thread.size(); ++i) {
    per_thread[i].thread = static_cast<int>(i);
    per_thread[i].dropped_events = i < dropped.size() ? dropped[i] : 0;
  }
  for (const Event& e : events) {
    ThreadSummary& s = per_thread[e.thread];
    switch (e.kind) {
      case EventKind::kTaskBegin:
        if (task_depth[e.thread]++ == 0) task_begin[e.thread] = e.tsc;
        break;
      case EventKind::kTaskEnd:
        if (task_depth[e.thread] == 0) {
          ++s.dropped_events;  // begin lost to ring wrap-around
          break;
        }
        ++s.tasks;
        if (--task_depth[e.thread] == 0) {
          s.busy_cycles += e.tsc - task_begin[e.thread];
        }
        break;
      case EventKind::kIdleBegin:
        if (idle_depth[e.thread]++ == 0) idle_begin[e.thread] = e.tsc;
        break;
      case EventKind::kIdleEnd:
        if (idle_depth[e.thread] == 0) {
          ++s.dropped_events;
          break;
        }
        if (--idle_depth[e.thread] == 0) {
          s.idle_cycles += e.tsc - idle_begin[e.thread];
        }
        break;
      case EventKind::kMessageSent:
        ++s.messages_sent;
        break;
      case EventKind::kMessageReceived:
        ++s.messages_received;
        break;
      case EventKind::kPoolHit:
        ++s.pool_hits;
        break;
      case EventKind::kPoolMiss:
        ++s.pool_misses;
        break;
      case EventKind::kPoolRemoteReturn:
        s.pool_remote_returns += e.arg;
        break;
      case EventKind::kStealAttempt:
        ++s.steal_attempts;
        break;
      case EventKind::kStealSuccess:
        ++s.steal_successes;
        break;
      case EventKind::kStealBatch:
        ++s.steal_batches;
        s.steal_batch_tasks += e.arg;
        break;
      case EventKind::kIngressPop:
        ++s.ingress_pops;
        break;
      case EventKind::kBackoffStage:
        ++s.backoff_transitions;
        break;
      default:
        break;
    }
  }
  // Begins still open at the end of the snapshot: their ends were never
  // recorded (wrap or truncation) — report, don't count.
  for (std::size_t t = 0; t < per_thread.size(); ++t) {
    per_thread[t].dropped_events +=
        static_cast<std::uint64_t>(task_depth[t]) +
        static_cast<std::uint64_t>(idle_depth[t]);
  }
  return per_thread;
}

void write_summary(std::ostream& os) {
  os << "thread,tasks,busy_cycles,idle_cycles,msgs_sent,msgs_recv,"
        "pool_hits,pool_misses,pool_remote_returns,steal_attempts,"
        "steal_successes,steal_batches,steal_batch_tasks,ingress_pops,"
        "backoff_transitions,dropped_events\n";
  for (const ThreadSummary& s : summarize()) {
    os << s.thread << ',' << s.tasks << ',' << s.busy_cycles << ','
       << s.idle_cycles << ',' << s.messages_sent << ','
       << s.messages_received << ',' << s.pool_hits << ','
       << s.pool_misses << ',' << s.pool_remote_returns << ','
       << s.steal_attempts << ','
       << s.steal_successes << ',' << s.steal_batches << ','
       << s.steal_batch_tasks << ',' << s.ingress_pops << ','
       << s.backoff_transitions << ',' << s.dropped_events << '\n';
  }
  os << "metric,value\n";
  for (const Metric& m : MetricsRegistry::instance().snapshot()) {
    os << m.name << ',' << m.value << '\n';
  }
}

// --- Chrome trace-event JSON export -----------------------------------

namespace {

void json_escape(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Emits one trace event object. `ts`/`dur` are microseconds. Every
/// event carries ph/ts/pid/tid so downstream validators can rely on
/// them unconditionally (metadata events use ts 0).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {
    os_ << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  }

  void event(std::string_view name, char ph, double ts, int tid,
             std::string_view extra) {
    if (!first_) os_ << ",";
    first_ = false;
    std::string escaped;
    json_escape(escaped, name);
    char buf[128];
    std::snprintf(buf, sizeof(buf), "\"ph\":\"%c\",\"ts\":%.3f", ph, ts);
    os_ << "\n{\"name\":\"" << escaped << "\"," << buf
        << ",\"pid\":0,\"tid\":" << tid;
    if (!extra.empty()) os_ << "," << extra;
    os_ << "}";
  }

  void finish(std::uint64_t dropped_total) {
    os_ << "\n],\"otherData\":{\"dropped_events\":" << dropped_total
        << "}}\n";
  }

 private:
  std::ostream& os_;
  bool first_ = true;
};

std::string span_name(const Event& begin) {
  if (begin.kind == EventKind::kTaskBegin) {
    if (begin.name != kNoName) return name_of(begin.name);
    return "task";
  }
  if (begin.kind == EventKind::kIdleBegin) return "idle";
  return "park";
}

}  // namespace

void export_chrome_json(std::ostream& os) {
  const auto events = snapshot();
  const auto dropped = dropped_per_thread();
  std::uint64_t dropped_total = 0;
  for (std::uint64_t d : dropped) dropped_total += d;

  const double cpn = cycles_per_ns();
  const std::uint64_t base = events.empty() ? 0 : events.front().tsc;
  const auto us = [&](std::uint64_t tsc) {
    return static_cast<double>(tsc - base) / cpn / 1000.0;
  };

  JsonWriter w(os);
  w.event("process_name", 'M', 0.0, 0,
          "\"args\":{\"name\":\"ttg_smalltask\"}");

  // Per-thread span-matching stacks: (begin event) per open span kind.
  const std::size_t nthreads =
      static_cast<std::size_t>(this_thread::id_count());
  std::vector<std::vector<Event>> task_stack(nthreads);
  std::vector<std::vector<Event>> idle_stack(nthreads);
  std::vector<std::vector<Event>> park_stack(nthreads);

  // Derived counter tracks.
  std::int64_t ready_depth = 0;
  std::uint64_t pool_hits = 0, pool_misses = 0;
  std::uint64_t pool_remote_returns = 0;

  for (std::size_t t = 0; t < nthreads; ++t) {
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  "\"args\":{\"name\":\"thread-%zu\"}", t);
    w.event("thread_name", 'M', 0.0, static_cast<int>(t), buf);
  }

  char extra[192];
  for (const Event& e : events) {
    const int tid = e.thread;
    switch (e.kind) {
      case EventKind::kTaskBegin:
        task_stack[tid].push_back(e);
        break;
      case EventKind::kIdleBegin:
        idle_stack[tid].push_back(e);
        break;
      case EventKind::kParkBegin:
        park_stack[tid].push_back(e);
        break;
      case EventKind::kTaskEnd:
      case EventKind::kIdleEnd:
      case EventKind::kParkEnd: {
        auto& stack = e.kind == EventKind::kTaskEnd ? task_stack[tid]
                      : e.kind == EventKind::kIdleEnd ? idle_stack[tid]
                                                      : park_stack[tid];
        if (stack.empty()) break;  // begin lost to ring wrap-around
        const Event begin = stack.back();
        stack.pop_back();
        const char* cat = e.kind == EventKind::kTaskEnd ? "task" : "idle";
        std::snprintf(extra, sizeof(extra),
                      "\"cat\":\"%s\",\"dur\":%.3f,\"args\":{\"arg\":%" PRIu64
                      "}",
                      cat, us(e.tsc) - us(begin.tsc), begin.arg);
        w.event(span_name(begin), 'X', us(begin.tsc), tid, extra);
        break;
      }
      case EventKind::kCounter: {
        std::snprintf(extra, sizeof(extra),
                      "\"args\":{\"value\":%" PRIu64 "}", e.arg);
        const std::string n = name_of(e.name);
        w.event(n.empty() ? "counter" : n, 'C', us(e.tsc), tid, extra);
        break;
      }
      case EventKind::kSchedPush:
      case EventKind::kSchedPushChain:
      case EventKind::kSchedPop: {
        ready_depth += e.kind == EventKind::kSchedPop
                           ? -1
                           : (e.kind == EventKind::kSchedPush
                                  ? 1
                                  : static_cast<std::int64_t>(e.arg));
        if (ready_depth < 0) ready_depth = 0;
        const std::string tier = name_of(e.name);
        std::snprintf(extra, sizeof(extra),
                      "\"cat\":\"sched\",\"s\":\"t\",\"args\":{\"queue\":"
                      "\"%s\",\"arg\":%" PRIu64 "}",
                      tier.c_str(), e.arg);
        w.event(to_string(e.kind), 'i', us(e.tsc), tid, extra);
        std::snprintf(extra, sizeof(extra),
                      "\"args\":{\"value\":%" PRId64 "}", ready_depth);
        w.event("ready_tasks", 'C', us(e.tsc), tid, extra);
        break;
      }
      case EventKind::kStealBatch: {
        // Instant (visible in the sched track) plus a counter track so
        // batch sizes can be graphed over time.
        std::snprintf(extra, sizeof(extra),
                      "\"cat\":\"sched\",\"s\":\"t\",\"args\":{\"batch\":%"
                      PRIu64 "}",
                      e.arg);
        w.event("steal_batch", 'i', us(e.tsc), tid, extra);
        std::snprintf(extra, sizeof(extra),
                      "\"args\":{\"value\":%" PRIu64 "}", e.arg);
        w.event("steal_batch_size", 'C', us(e.tsc), tid, extra);
        break;
      }
      case EventKind::kBackoffStage: {
        std::snprintf(extra, sizeof(extra),
                      "\"cat\":\"idle\",\"s\":\"t\",\"args\":{\"stage\":%"
                      PRIu64 "}",
                      e.arg);
        w.event("backoff_stage", 'i', us(e.tsc), tid, extra);
        std::snprintf(extra, sizeof(extra),
                      "\"args\":{\"value\":%" PRIu64 "}", e.arg);
        w.event("backoff_stage", 'C', us(e.tsc), tid, extra);
        break;
      }
      case EventKind::kPoolHit:
      case EventKind::kPoolMiss: {
        if (e.kind == EventKind::kPoolHit) ++pool_hits;
        else ++pool_misses;
        const std::uint64_t total = pool_hits + pool_misses;
        std::snprintf(extra, sizeof(extra),
                      "\"args\":{\"value\":%" PRIu64 "}",
                      total > 0 ? pool_hits * 100 / total : 0);
        w.event("copy_pool_hit_rate", 'C', us(e.tsc), tid, extra);
        break;
      }
      case EventKind::kPoolRemoteReturn: {
        // Instant for the batch plus a cumulative counter track so the
        // cross-domain return rate can be graphed over time.
        pool_remote_returns += e.arg;
        std::snprintf(extra, sizeof(extra),
                      "\"cat\":\"pool\",\"s\":\"t\",\"args\":{\"batch\":%"
                      PRIu64 "}",
                      e.arg);
        w.event("pool_remote_return", 'i', us(e.tsc), tid, extra);
        std::snprintf(extra, sizeof(extra),
                      "\"args\":{\"value\":%" PRIu64 "}",
                      pool_remote_returns);
        w.event("pool_remote_returns", 'C', us(e.tsc), tid, extra);
        break;
      }
      default: {
        // Generic instants: steals, termdet rounds, messages, inlining.
        const std::string n = name_of(e.name);
        std::snprintf(extra, sizeof(extra),
                      "\"cat\":\"%s\",\"s\":\"t\",\"args\":{\"name\":\"%s\","
                      "\"arg\":%" PRIu64 "}",
                      category_of(e.kind) == kCatSched ? "sched" : "runtime",
                      n.c_str(), e.arg);
        w.event(to_string(e.kind), 'i', us(e.tsc), tid, extra);
        break;
      }
    }
  }
  w.finish(dropped_total);
}

// --- metrics registry -------------------------------------------------

MetricsRegistry::MetricsRegistry() {
  // Built-in surfaces. The registry outlives every engine, so these
  // readers only touch process-lifetime state.
  for (std::size_t c = 0; c < kAtomicOpCategories; ++c) {
    const auto cat = static_cast<AtomicOpCategory>(c);
    entries_.push_back(
        {next_id_++, "atomics." + std::string(ttg::to_string(cat)),
         [cat] { return atomic_ops::snapshot()[cat]; }});
  }
  entries_.push_back({next_id_++, "copy_pool.hits",
                      [] { return copy_pool_stats().hits; }});
  entries_.push_back({next_id_++, "copy_pool.misses",
                      [] { return copy_pool_stats().misses; }});
  entries_.push_back({next_id_++, "copy_pool.heap_fallbacks",
                      [] { return copy_pool_stats().heap_fallbacks; }});
  entries_.push_back({next_id_++, "copy_pool.remote_returns",
                      [] { return copy_pool_stats().remote_returns; }});
  entries_.push_back({next_id_++, "copy_pool.remote_free_batches",
                      [] { return copy_pool_stats().remote_free_batches; }});
  entries_.push_back({next_id_++, "pending.delegations",
                      [] { return pending_table_stats().delegations; }});
  entries_.push_back({next_id_++, "pending.combined",
                      [] { return pending_table_stats().combined; }});
  entries_.push_back({next_id_++, "topology.memory_domains", [] {
                        return static_cast<std::uint64_t>(memory_domains());
                      }});
  entries_.push_back({next_id_++, "topology.cpus", [] {
                        return static_cast<std::uint64_t>(
                            topology().num_cpus);
                      }});
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

int MetricsRegistry::add(std::string name, Reader reader) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int id = next_id_++;
  entries_.push_back({id, std::move(name), std::move(reader)});
  return id;
}

void MetricsRegistry::remove(int id) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [id](const Entry& e) { return e.id == id; }),
                 entries_.end());
}

std::vector<Metric> MetricsRegistry::snapshot() const {
  std::vector<Metric> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back({e.name, e.reader()});
  }
  std::sort(out.begin(), out.end(),
            [](const Metric& a, const Metric& b) { return a.name < b.name; });
  return out;
}

std::uint64_t MetricsRegistry::value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t sum = 0;
  for (const Entry& e : entries_) {
    if (e.name == name) sum += e.reader();
  }
  return sum;
}

}  // namespace ttg::trace
