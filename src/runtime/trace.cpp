#include "runtime/trace.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/cycle_clock.hpp"
#include "common/thread_id.hpp"

namespace ttg::trace {

std::string_view to_string(EventKind k) {
  switch (k) {
    case EventKind::kTaskBegin: return "task_begin";
    case EventKind::kTaskEnd: return "task_end";
    case EventKind::kIdleBegin: return "idle_begin";
    case EventKind::kIdleEnd: return "idle_end";
    case EventKind::kMessageSent: return "msg_sent";
    case EventKind::kMessageReceived: return "msg_recv";
    case EventKind::kPoolHit: return "pool_hit";
    case EventKind::kPoolMiss: return "pool_miss";
  }
  return "?";
}

namespace {

struct ThreadRing {
  std::unique_ptr<Event[]> events;
  std::size_t capacity = 0;
  std::size_t count = 0;  // total recorded (wraps logically, not stored)
};

ThreadRing g_rings[kMaxThreads];
std::atomic<bool> g_enabled{false};
std::size_t g_capacity = 0;

}  // namespace

void enable(std::size_t events_per_thread) {
  g_enabled.store(false, std::memory_order_relaxed);
  g_capacity = events_per_thread;
  for (auto& ring : g_rings) {
    ring.events.reset();
    ring.capacity = 0;
    ring.count = 0;
  }
  g_enabled.store(true, std::memory_order_release);
}

void disable() { g_enabled.store(false, std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void record(EventKind kind, std::uint32_t arg) {
  if (!enabled()) return;
  const int tid = this_thread::id();
  ThreadRing& ring = g_rings[tid];
  if (ring.capacity == 0) {
    // First event on this thread since enable(): allocate lazily so
    // uninvolved threads cost nothing.
    ring.events = std::make_unique<Event[]>(g_capacity);
    ring.capacity = g_capacity;
    ring.count = 0;
  }
  Event& e = ring.events[ring.count % ring.capacity];
  e.tsc = rdtsc();
  e.arg = arg;
  e.thread = static_cast<std::uint16_t>(tid);
  e.kind = kind;
  ++ring.count;
}

std::vector<Event> snapshot() {
  std::vector<Event> out;
  const int n = this_thread::id_count();
  for (int t = 0; t < n; ++t) {
    const ThreadRing& ring = g_rings[t];
    const std::size_t kept = std::min(ring.count, ring.capacity);
    for (std::size_t i = 0; i < kept; ++i) {
      out.push_back(ring.events[i]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.tsc < b.tsc; });
  return out;
}

void dump_csv(std::ostream& os) {
  os << "tsc,thread,kind,arg\n";
  for (const Event& e : snapshot()) {
    os << e.tsc << ',' << e.thread << ',' << to_string(e.kind) << ','
       << e.arg << '\n';
  }
}

std::vector<ThreadSummary> summarize() {
  const auto events = snapshot();
  std::vector<ThreadSummary> per_thread(
      static_cast<std::size_t>(this_thread::id_count()));
  std::vector<std::uint64_t> task_begin(per_thread.size(), 0);
  std::vector<std::uint64_t> idle_begin(per_thread.size(), 0);
  for (std::size_t i = 0; i < per_thread.size(); ++i) {
    per_thread[i].thread = static_cast<int>(i);
  }
  for (const Event& e : events) {
    ThreadSummary& s = per_thread[e.thread];
    switch (e.kind) {
      case EventKind::kTaskBegin:
        task_begin[e.thread] = e.tsc;
        break;
      case EventKind::kTaskEnd:
        if (task_begin[e.thread] != 0) {
          ++s.tasks;
          s.busy_cycles += e.tsc - task_begin[e.thread];
          task_begin[e.thread] = 0;
        }
        break;
      case EventKind::kIdleBegin:
        idle_begin[e.thread] = e.tsc;
        break;
      case EventKind::kIdleEnd:
        if (idle_begin[e.thread] != 0) {
          s.idle_cycles += e.tsc - idle_begin[e.thread];
          idle_begin[e.thread] = 0;
        }
        break;
      case EventKind::kMessageSent:
        ++s.messages_sent;
        break;
      case EventKind::kMessageReceived:
        ++s.messages_received;
        break;
      case EventKind::kPoolHit:
        ++s.pool_hits;
        break;
      case EventKind::kPoolMiss:
        ++s.pool_misses;
        break;
    }
  }
  return per_thread;
}

}  // namespace ttg::trace
