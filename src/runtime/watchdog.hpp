// Stall watchdog: a monitor thread that detects a live-but-stuck run.
//
// The four-counter termination wave (Sec. IV-C) converges only if every
// discovered task eventually completes. A bug that breaks that
// assumption — a task body deadlocked on an external lock, a
// half-satisfied join whose missing input was never sent, a scheduler
// defect that strands a queue — leaves wait() spinning forever with no
// diagnostic. The watchdog samples an aggregate progress counter; when
// the run is *live* (non-quiescent: pending work remains) but progress
// has not moved for a configured quiet period, it fires a stall
// callback exactly once per stall (it re-arms when progress resumes).
//
// The sampler and callback are supplied by the owner (World wires in
// task/message counters and a full scheduler/termdet/parking dump); the
// watchdog itself only owns the thread and the timing discipline. All
// sampling must read atomic-backed state — the run is in full flight.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ttg {

class StallWatchdog {
 public:
  /// One progress observation: a monotonically increasing aggregate
  /// (tasks executed + failed + cancelled + messages delivered) plus
  /// whether the run is live (work pending). Stalls are only reported
  /// while live — an idle runtime is quiet, not stuck.
  struct Sample {
    std::uint64_t progress = 0;
    bool live = false;
  };

  /// Per-World progress observation for multi-tenant Runtimes
  /// (docs/serving.md): `id` names the World across polls (ids may come
  /// and go between samples as Worlds are created/destroyed).
  struct TenantSample {
    std::uint64_t id = 0;
    std::uint64_t progress = 0;
    bool live = false;
  };

  /// One multi-tenant observation: the engine-wide aggregate plus one
  /// entry per live epoch. A quiet *World* on a busy engine is a tenant
  /// stall (its graph is stuck while siblings make progress); a quiet
  /// engine with live tenants is an engine stall.
  struct MultiSample {
    std::uint64_t engine_progress = 0;
    std::vector<TenantSample> tenants;
  };

  using Sampler = std::function<Sample()>;
  using StallHandler = std::function<void()>;
  using MultiSampler = std::function<MultiSample()>;
  /// Receives the ids of the Worlds whose quiet window expired and
  /// whether the engine as a whole was also quiet over that window.
  using MultiStallHandler =
      std::function<void(const std::vector<std::uint64_t>&, bool)>;

  /// Starts the monitor thread. `quiet_ms` is the no-progress window
  /// that triggers the handler; it must exceed the longest task body.
  StallWatchdog(int quiet_ms, Sampler sampler, StallHandler on_stall);

  /// Multi-tenant mode: per-World quiet windows over a shared engine.
  /// Fires once per stall episode per World (re-arming when that World's
  /// progress resumes), so one wedged tenant cannot drown out a later
  /// stall in a sibling.
  StallWatchdog(int quiet_ms, MultiSampler sampler,
                MultiStallHandler on_stall);
  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;
  ~StallWatchdog();

  /// Enables stall detection (wait()/fence() entry). The quiet timer
  /// starts from the next sample.
  void arm();

  /// Disables stall detection (wait() exit); a disarmed watchdog only
  /// keeps sampling so re-arming starts from fresh state.
  void disarm();

  /// Times the handler has fired since construction.
  std::uint64_t fires() const {
    return fires_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  void run_multi();

  const int quiet_ms_;
  const int poll_ms_;
  Sampler sampler_;
  StallHandler on_stall_;
  MultiSampler multi_sampler_;
  MultiStallHandler multi_on_stall_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;     // guarded by mutex_
  bool armed_ = false;    // guarded by mutex_
  std::atomic<std::uint64_t> fires_{0};
  std::thread thread_;  // last: joins against the members above
};

}  // namespace ttg
