// Fault state: failure capture, cooperative cancellation, fault injection.
//
// The runtime's failure model (docs/robustness.md):
//
//  * A task body that throws no longer escapes the worker loop (which
//    would std::terminate); the exception is captured into the World's
//    FaultState — first error wins — and the graph is cancelled.
//  * Cancellation is cooperative: already-running tasks finish, but
//    newly-activated tasks are dropped at the scheduler and at
//    send/broadcast ingress. Every dropped task is accounted as a
//    "cancelled completion" so the four-counter termination wave
//    (Sec. IV-C) converges exactly as if the task had run.
//  * The hot path pays one relaxed load (`cancelled()`) per check —
//    no atomic RMW — so Eq. (1) accounting is unchanged when no error
//    occurs.
//
// FaultPlan is the seeded fault-injection configuration used by the
// test layer: at task pop boundaries the engine may inject a delay or a
// thrown FaultInjected with per-plan probabilities, deterministically
// derived from the seed and the worker index.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>

namespace ttg {

enum class Outcome : std::uint8_t {
  kOk = 0,   ///< the epoch completed with no failure and no abort
  kFailed,   ///< a task body threw; the exception is captured
  kAborted,  ///< World::abort() (or the stall watchdog) cancelled the run
  kShed,     ///< the Runtime's admission gate rejected the epoch (overload)
};

/// Result of World::wait(): how the epoch ended, plus the abort/failure
/// reason (exception message or abort string) when it did not end kOk.
struct Status {
  Outcome outcome = Outcome::kOk;
  std::string reason;

  bool ok() const { return outcome == Outcome::kOk; }
  bool failed() const { return outcome == Outcome::kFailed; }
  bool aborted() const { return outcome == Outcome::kAborted; }
  bool shed() const { return outcome == Outcome::kShed; }
};

/// Thrown by World::rethrow() when the epoch ended via World::abort()
/// rather than a captured task exception.
struct WorldAborted : std::runtime_error {
  explicit WorldAborted(const std::string& reason)
      : std::runtime_error(reason) {}
};

/// The exception type injected by a FaultPlan throw site.
struct FaultInjected : std::runtime_error {
  explicit FaultInjected(const std::string& what)
      : std::runtime_error(what) {}
};

/// Seeded fault-injection plan, applied by the engine at task pop
/// boundaries (before the task body runs). Probabilities are per task.
/// Install with World::set_fault_plan() / Context::set_fault_plan()
/// while the runtime is quiescent; the plan must outlive the run.
struct FaultPlan {
  std::uint64_t seed = 1;
  double throw_prob = 0.0;  ///< P(inject a FaultInjected throw)
  double delay_prob = 0.0;  ///< P(sleep delay_us before executing)
  int delay_us = 50;

  /// Diagnostics: how many faults the plan actually injected. Mutable:
  /// the engine holds the plan by const pointer.
  mutable std::atomic<std::uint64_t> injected_throws{0};
  mutable std::atomic<std::uint64_t> injected_delays{0};

  FaultPlan() = default;
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;
};

/// Per-World fault state: the cancellation flag plus the captured
/// error. Shared by the World's Contexts/engines; reads on the task hot
/// path are relaxed loads of `cancelled_` only.
class FaultState {
 public:
  FaultState() = default;
  FaultState(const FaultState&) = delete;
  FaultState& operator=(const FaultState&) = delete;

  /// True once the run is cancelled (failure or abort). Hot-path check:
  /// one relaxed load, no RMW, so Eq. (1) accounting is unchanged.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Records a task-body exception. First error wins: later exceptions
  /// (common once cancellation is racing the still-draining graph) are
  /// dropped. Returns true when this call captured the first error.
  bool on_task_exception(std::exception_ptr ep) {
    std::lock_guard<std::mutex> lock(mutex_);
    const bool first = outcome_ == Outcome::kOk;
    if (first) {
      outcome_ = Outcome::kFailed;
      error_ = ep;
      reason_ = describe(ep);
    }
    cancelled_.store(true, std::memory_order_release);
    return first;
  }

  /// Requests a cooperative abort. A prior captured failure wins over
  /// the abort (the abort is then just the cancellation edge). Returns
  /// true when this call moved the outcome to kAborted.
  bool request_abort(std::string reason) {
    std::lock_guard<std::mutex> lock(mutex_);
    const bool first = outcome_ == Outcome::kOk;
    if (first) {
      outcome_ = Outcome::kAborted;
      reason_ = std::move(reason);
    }
    cancelled_.store(true, std::memory_order_release);
    return first;
  }

  /// Marks the epoch shed by admission control: no work was (or will be)
  /// admitted; stray seeds drop at ingress via the cancellation edge.
  /// Same first-outcome-wins discipline as request_abort.
  bool request_shed(std::string reason) {
    std::lock_guard<std::mutex> lock(mutex_);
    const bool first = outcome_ == Outcome::kOk;
    if (first) {
      outcome_ = Outcome::kShed;
      reason_ = std::move(reason);
    }
    cancelled_.store(true, std::memory_order_release);
    return first;
  }

  Status status() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return Status{outcome_, reason_};
  }

  /// Rethrows the captured exception (kFailed), throws WorldAborted
  /// (kAborted), or returns (kOk).
  void rethrow() const {
    std::exception_ptr ep;
    Outcome outcome;
    std::string reason;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ep = error_;
      outcome = outcome_;
      reason = reason_;
    }
    if (outcome == Outcome::kFailed && ep) std::rethrow_exception(ep);
    if (outcome == Outcome::kAborted || outcome == Outcome::kShed) {
      throw WorldAborted(reason);
    }
  }

  /// Clears the state for the next epoch. Callers must guarantee the
  /// runtime is quiescent (no concurrent task execution).
  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    outcome_ = Outcome::kOk;
    error_ = nullptr;
    reason_.clear();
    cancelled_.store(false, std::memory_order_release);
  }

 private:
  static std::string describe(const std::exception_ptr& ep) {
    try {
      std::rethrow_exception(ep);
    } catch (const std::exception& e) {
      return e.what();
    } catch (...) {
      return "unknown exception";
    }
  }

  std::atomic<bool> cancelled_{false};
  mutable std::mutex mutex_;
  Outcome outcome_ = Outcome::kOk;  // guarded by mutex_
  std::exception_ptr error_;        // guarded by mutex_
  std::string reason_;              // guarded by mutex_
};

}  // namespace ttg
