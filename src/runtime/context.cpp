#include "runtime/context.hpp"

#include <cassert>
#include <chrono>
#include <thread>
#include <utility>

#include "runtime/trace.hpp"

namespace ttg {

Context::Context(const Config& config)
    : Context(config, nullptr, /*rank=*/0) {}

Context::Context(const Config& config, TerminationDetector* detector,
                 int rank, FaultState* fault)
    : config_(config) {
  config_.apply_globals();
  if (detector == nullptr) {
    owned_detector_ = std::make_unique<TerminationDetector>(
        /*nranks=*/1, config_.termdet);
    detector_ = owned_detector_.get();
  } else {
    detector_ = detector;
  }
  if (fault == nullptr) {
    owned_fault_ = std::make_unique<FaultState>();
    fault_ = owned_fault_.get();
  } else {
    fault_ = fault;
  }

  // For a standalone (single-rank) context, the constructing thread is
  // the external producer. Multi-rank worlds attach their producer thread
  // once, to rank 0, in World's constructor.
  if (owned_detector_ != nullptr) {
    detector_->thread_attach(rank);
  }

  owned_engine_ = std::make_unique<ExecutionEngine>(
      *this, config_, *detector_, *fault_, rank);
  engine_ = owned_engine_.get();
}

Context::Context(const Config& config, ExecutionEngine& engine,
                 TenantState* tenant)
    : config_(config),
      detector_(&engine.detector()),
      fault_(tenant != nullptr ? &tenant->fault : &engine.fault()),
      tenant_(tenant),
      engine_(&engine) {
  // No apply_globals(): the Runtime that owns `engine` already applied
  // its configuration, and a tenant must not retune shared knobs.
}

Context::~Context() = default;

void Context::abort(std::string reason) {
  if (fault_->request_abort(std::move(reason))) {
    trace::record(trace::EventKind::kWorldAborted,
                  static_cast<std::uint64_t>(Outcome::kAborted));
  }
  // Wake parked workers either way: they must drain (and drop) the
  // queues so the termination wave converges.
  engine_->notify_work();
}

void Context::fence() {
  assert(tenant_ == nullptr &&
         "tenant epochs complete via World::wait(), not Context::fence()");
  // The calling thread stops producing: flush its counters and take part
  // in the wave until termination is announced.
  detector_->on_idle();
  int spins = 0;
  while (!detector_->terminated()) {
    detector_->advance_wave();
    if (++spins < 256) {
      std::this_thread::yield();
    } else {
      // Long-running tasks: back off to a microsleep so the fence thread
      // does not compete with workers for the core.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

void Context::reset_epoch() {
  if (tenant_ != nullptr) {
    // A tenant's epoch state is its own counters and fault, never the
    // shared engine's termination wave.
    assert(tenant_->quiescent() &&
           "reset_epoch() before the tenant epoch drained");
    tenant_->unseal();
    tenant_->fault.reset();
    return;
  }
  assert(detector_->terminated() &&
         "reset_epoch() before the previous epoch terminated");
  detector_->reset();
  // A consumed failure/abort does not leak into the next epoch. Callers
  // that care about the outcome read fault().status() before resetting.
  fault_->reset();
}

}  // namespace ttg
