#include "runtime/context.hpp"

#include <cassert>
#include <chrono>
#include <thread>
#include <utility>

#include "runtime/trace.hpp"

namespace ttg {

Context::Context(const Config& config)
    : Context(config, nullptr, /*rank=*/0) {}

Context::Context(const Config& config, TerminationDetector* detector,
                 int rank, FaultState* fault)
    : config_(config) {
  config_.apply_globals();
  if (detector == nullptr) {
    owned_detector_ = std::make_unique<TerminationDetector>(
        /*nranks=*/1, config_.termdet);
    detector_ = owned_detector_.get();
  } else {
    detector_ = detector;
  }
  if (fault == nullptr) {
    owned_fault_ = std::make_unique<FaultState>();
    fault_ = owned_fault_.get();
  } else {
    fault_ = fault;
  }

  // For a standalone (single-rank) context, the constructing thread is
  // the external producer. Multi-rank worlds attach their producer thread
  // once, to rank 0, in World's constructor.
  if (owned_detector_ != nullptr) {
    detector_->thread_attach(rank);
  }

  engine_ = std::make_unique<ExecutionEngine>(*this, config_, *detector_,
                                              *fault_, rank);
}

Context::~Context() = default;

void Context::abort(std::string reason) {
  if (fault_->request_abort(std::move(reason))) {
    trace::record(trace::EventKind::kWorldAborted,
                  static_cast<std::uint64_t>(Outcome::kAborted));
  }
  // Wake parked workers either way: they must drain (and drop) the
  // queues so the termination wave converges.
  engine_->notify_work();
}

void Context::fence() {
  // The calling thread stops producing: flush its counters and take part
  // in the wave until termination is announced.
  detector_->on_idle();
  int spins = 0;
  while (!detector_->terminated()) {
    detector_->advance_wave();
    if (++spins < 256) {
      std::this_thread::yield();
    } else {
      // Long-running tasks: back off to a microsleep so the fence thread
      // does not compete with workers for the core.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

void Context::reset_epoch() {
  assert(detector_->terminated() &&
         "reset_epoch() before the previous epoch terminated");
  detector_->reset();
  // A consumed failure/abort does not leak into the next epoch. Callers
  // that care about the outcome read fault().status() before resetting.
  fault_->reset();
}

}  // namespace ttg
