#include "runtime/context.hpp"

#include <cassert>
#include <chrono>

#include "common/busy_wait.hpp"
#include "runtime/trace.hpp"

namespace ttg {

namespace {
thread_local Worker* t_current_worker = nullptr;
}  // namespace

Worker* Context::current_worker() { return t_current_worker; }

Context::Context(const Config& config)
    : Context(config, nullptr, /*rank=*/0) {}

Context::Context(const Config& config, TerminationDetector* detector,
                 int rank)
    : config_(config), num_threads_(config.threads()), rank_(rank) {
  config_.apply_globals();
  if (detector == nullptr) {
    owned_detector_ = std::make_unique<TerminationDetector>(
        /*nranks=*/1, config_.termdet);
    detector_ = owned_detector_.get();
  } else {
    detector_ = detector;
  }
  scheduler_ = make_scheduler(config_.scheduler, num_threads_,
                              config_.steal_domain_size);
  workers_ = std::make_unique<CachePadded<Worker>[]>(
      static_cast<std::size_t>(num_threads_));

  // For a standalone (single-rank) context, the constructing thread is
  // the external producer. Multi-rank worlds attach their producer thread
  // once, to rank 0, in World's constructor.
  if (owned_detector_ != nullptr) {
    detector_->thread_attach(rank_);
  }

  threads_.reserve(static_cast<std::size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

Context::~Context() {
  stop_.store(true, std::memory_order_release);
  notify_work();
  for (auto& t : threads_) t.join();
}

void Context::notify_work() {
  signal_.fetch_add(1, std::memory_order_release);
  if (sleepers_.load(std::memory_order_acquire) > 0) {
    signal_.notify_all();
  }
}

void Context::begin() { detector_->on_resume(); }

void Context::schedule(TaskBase* task) {
  Worker* w = current_worker();
  const int idx =
      (w != nullptr && &w->context() == this) ? w->index() : kExternalWorker;
  scheduler_->push(idx, task);
  notify_work();
}

void Context::schedule_chain(TaskBase* first) {
  if (first == nullptr) return;
  Worker* w = current_worker();
  const int idx =
      (w != nullptr && &w->context() == this) ? w->index() : kExternalWorker;
  scheduler_->push_chain(idx, first);
  notify_work();
}

namespace {

/// Inserts `task` into the descending-priority chain at `head` (new
/// tasks go before equal-priority older ones, as in the LLP fast path).
void batch_insert(TaskBase*& head, TaskBase* task) {
  LifoNode* prev = nullptr;
  LifoNode* cur = head;
  while (cur != nullptr && cur->priority > task->priority) {
    prev = cur;
    cur = cur->next;
  }
  task->next = cur;
  if (prev == nullptr) {
    head = task;
  } else {
    prev->next = task;
  }
}

}  // namespace

void Context::schedule_or_inline(TaskBase* task) {
  Worker* w = current_worker();
  if (w != nullptr && &w->context() == this) {
    if (config_.inline_max_depth > 0 &&
        w->inline_depth_ < config_.inline_max_depth) {
      ++w->inline_depth_;
      run_task(task, *w);
      --w->inline_depth_;
      return;
    }
    if (w->batch_open_) {
      // The common single-successor case (chains) keeps the plain push
      // fast path; bundling starts with the second eligible successor.
      if (!w->batch_primed_) {
        w->batch_primed_ = true;
        schedule(task);
        return;
      }
      batch_insert(w->batch_head_, task);
      if (++w->batch_size_ >= kMaxBatch) {
        scheduler_->push_chain(w->index_, w->batch_head_);
        w->batch_head_ = nullptr;
        w->batch_size_ = 0;
        notify_work();
      }
      return;
    }
  }
  schedule(task);
}

void Context::run_task(TaskBase* task, Worker& worker) {
  // Open a fresh bundling scope (stack discipline: inlined tasks nest).
  TaskBase* saved_head = worker.batch_head_;
  const int saved_size = worker.batch_size_;
  const bool saved_open = worker.batch_open_;
  const bool saved_primed = worker.batch_primed_;
  worker.batch_head_ = nullptr;
  worker.batch_size_ = 0;
  worker.batch_open_ = config_.bundle_successors;
  worker.batch_primed_ = false;

  trace::record(trace::EventKind::kTaskBegin);
  task->execute(task, worker);
  trace::record(trace::EventKind::kTaskEnd);
  ++worker.tasks_executed_;

  if (worker.batch_head_ != nullptr) {
    scheduler_->push_chain(worker.index_, worker.batch_head_);
    notify_work();
  }
  worker.batch_head_ = saved_head;
  worker.batch_size_ = saved_size;
  worker.batch_open_ = saved_open;
  worker.batch_primed_ = saved_primed;

  detector_->on_completed();
}

void Context::fence() {
  // The calling thread stops producing: flush its counters and take part
  // in the wave until termination is announced.
  detector_->on_idle();
  int spins = 0;
  while (!detector_->terminated()) {
    detector_->advance_wave();
    if (++spins < 256) {
      std::this_thread::yield();
    } else {
      // Long-running tasks: back off to a microsleep so the fence thread
      // does not compete with workers for the core.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

void Context::reset_epoch() {
  assert(detector_->terminated() &&
         "reset_epoch() before the previous epoch terminated");
  detector_->reset();
}

std::uint64_t Context::total_tasks_executed() const {
  std::uint64_t n = 0;
  for (int i = 0; i < num_threads_; ++i) n += workers_[i]->tasks_executed();
  return n;
}

void Context::worker_main(int index) {
  Worker& self = workers_[index].value;
  self.context_ = this;
  self.index_ = index;
  self.rank_ = rank_;
  t_current_worker = &self;

  detector_->thread_attach(rank_);
  // A worker starts with nothing to do.
  detector_->on_idle();

  int idle_spins = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    if (LifoNode* node = scheduler_->pop(index); node != nullptr) {
      detector_->on_resume();
      idle_spins = 0;
      run_task(static_cast<TaskBase*>(node), self);
      continue;
    }

    if (ProgressSource* src = progress_.load(std::memory_order_acquire);
        src != nullptr && !src->empty()) {
      detector_->on_resume();
      src->drain(self);
      idle_spins = 0;
      continue;
    }

    detector_->on_idle();
    if (++idle_spins < 64) {
      std::this_thread::yield();
      continue;
    }

    // Park until schedule()/shutdown bumps the signal. The re-check of
    // the scheduler between reading the signal and waiting prevents a
    // missed wakeup for pushes that happened before we loaded `v`.
    const std::uint64_t v = signal_.load(std::memory_order_acquire);
    if (LifoNode* node = scheduler_->pop(index); node != nullptr) {
      detector_->on_resume();
      idle_spins = 0;
      run_task(static_cast<TaskBase*>(node), self);
      continue;
    }
    if (ProgressSource* src = progress_.load(std::memory_order_acquire);
        src != nullptr && !src->empty()) {
      continue;  // a message landed after the earlier probe
    }
    if (stop_.load(std::memory_order_acquire)) break;
    trace::record(trace::EventKind::kIdleBegin);
    sleepers_.fetch_add(1, std::memory_order_acq_rel);
    signal_.wait(v, std::memory_order_acquire);
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    trace::record(trace::EventKind::kIdleEnd);
    idle_spins = 0;
  }

  t_current_worker = nullptr;
}

}  // namespace ttg
