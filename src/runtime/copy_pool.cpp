#include "runtime/copy_pool.hpp"

#include <array>
#include <atomic>
#include <new>
#include <vector>

#include "atomics/op_counter.hpp"
#include "common/cache.hpp"
#include "common/thread_id.hpp"
#include "runtime/trace.hpp"

namespace ttg {

namespace {

// Size classes: 64, 128, 256, 512, 1024 bytes. A DataCopy header is
// ~24 bytes, so the smallest class still fits typical scalar payloads
// with room for the pool's own slot header.
constexpr std::size_t kNumClasses = 5;
constexpr std::size_t kMinClassBytes = 64;

int class_index(std::size_t bytes) {
  std::size_t cap = kMinClassBytes;
  for (std::size_t i = 0; i < kNumClasses; ++i, cap *= 2) {
    if (bytes <= cap) return static_cast<int>(i);
  }
  return -1;
}

// Leaked deliberately: copies may be released from static destructors
// after main(), so the pools must never die before the process does.
// Chunk memory is recycled through free lists for the whole run, which
// also satisfies the AtomicLifo node-lifetime rule.
std::array<MemoryPool, kNumClasses>& pools() {
  constexpr auto kMode = MemoryPool::Mode::kPrivateCache;
  constexpr std::size_t kChunk = 64;
  static auto* p = new std::array<MemoryPool, kNumClasses>{
      MemoryPool(64, kChunk, kMode), MemoryPool(128, kChunk, kMode),
      MemoryPool(256, kChunk, kMode), MemoryPool(512, kChunk, kMode),
      MemoryPool(1024, kChunk, kMode)};
  return *p;
}

struct alignas(kCacheLineSize) HeapCounters {
  std::uint64_t fallbacks = 0;
};
HeapCounters g_heap[kMaxThreads];

void account(bool hit) {
  if (hit) {
    atomic_ops::count(AtomicOpCategory::kCopyPoolHit);
    trace::record(trace::EventKind::kPoolHit);
  } else {
    atomic_ops::count(AtomicOpCategory::kCopyPoolMiss);
    trace::record(trace::EventKind::kPoolMiss);
  }
}

}  // namespace

void copy_pool_prewarm(std::size_t bytes, std::size_t count) {
  const int cls = class_index(bytes);
  if (cls < 0 || count == 0) return;
  // The recorded footprint counts *total* allocations of an epoch, but
  // the live set at any instant is bounded by the graph's width; cap the
  // warm-up so a long chain does not pin an epoch's worth of storage.
  constexpr std::size_t kMaxPrewarm = 4096;
  const std::size_t n = count < kMaxPrewarm ? count : kMaxPrewarm;
  MemoryPool& pool = pools()[static_cast<std::size_t>(cls)];
  std::vector<void*> held;
  held.reserve(n);
  for (std::size_t i = 0; i < n; ++i) held.push_back(pool.allocate());
  for (void* p : held) pool.deallocate(p);
}

CopyPoolStats copy_pool_stats() {
  CopyPoolStats s;
  for (const MemoryPool& pool : pools()) {
    const MemoryPool::Stats ps = pool.stats();
    s.hits += ps.hits;
    s.misses += ps.misses;
    s.remote_returns += ps.remote_returns;
    s.remote_free_batches += ps.remote_flush_batches;
  }
  for (int t = 0; t < this_thread::id_count(); ++t) {
    s.heap_fallbacks += g_heap[t].fallbacks;
  }
  s.misses += s.heap_fallbacks;
  return s;
}

void copy_pool_flush_remote() noexcept {
  for (MemoryPool& pool : pools()) pool.flush_remote_frees();
}

namespace detail {

void* copy_alloc(std::size_t bytes, std::size_t align, MemoryPool*& pool) {
  const int cls =
      align <= alignof(std::max_align_t) ? class_index(bytes) : -1;
  if (cls < 0) {
    // Oversized or over-aligned: heap fallback, charged as a miss.
    ++g_heap[this_thread::id()].fallbacks;
    account(/*hit=*/false);
    pool = nullptr;
    if (align > alignof(std::max_align_t)) {
      return ::operator new(bytes, std::align_val_t(align));
    }
    return ::operator new(bytes);
  }
  pool = &pools()[static_cast<std::size_t>(cls)];
  bool hit;
  void* p = pool->allocate(hit);
  account(hit);
  return p;
}

void copy_free(void* p, MemoryPool* pool, std::size_t align) noexcept {
  if (pool != nullptr) {
    pool->deallocate(p);
    return;
  }
  if (align > alignof(std::max_align_t)) {
    ::operator delete(p, std::align_val_t(align));
  } else {
    ::operator delete(p);
  }
}

}  // namespace detail
}  // namespace ttg
