#include "runtime/worker.hpp"

#include "runtime/engine.hpp"
#include "runtime/trace.hpp"

namespace ttg {

namespace {

/// Inserts `task` into the descending-priority chain at `head` (new
/// tasks go before equal-priority older ones, as in the LLP fast path).
void batch_insert(TaskBase*& head, TaskBase* task) {
  LifoNode* prev = nullptr;
  LifoNode* cur = head;
  while (cur != nullptr && cur->priority > task->priority) {
    prev = cur;
    cur = cur->next;
  }
  task->next = cur;
  if (prev == nullptr) {
    head = task;
  } else {
    prev->next = task;
  }
}

}  // namespace

void Worker::run_task(TaskBase* task) {
  run_one(task);
  if (nest_ != 0) return;
  // Drain the tail chain: a replayed task whose completion readied
  // exactly one successor parked it in chained_; run it here without a
  // scheduler round-trip. The checks mirror the worker-loop pop path so
  // cancellation and fault injection see chained tasks too.
  while (TaskBase* next = chained_) {
    chained_ = nullptr;
    if (engine_->fault_for(next).cancelled()) {
      engine_->drop_cancelled(next);
      continue;
    }
    if (engine_->inject_fault(next, index_)) continue;
    run_one(next);
  }
}

void Worker::run_one(TaskBase* task) {
  ++nest_;
  // Open a fresh bundling scope (stack discipline: inlined tasks nest).
  TaskBase* saved_head = batch_head_;
  const int saved_size = batch_size_;
  const bool saved_open = batch_open_;
  const bool saved_primed = batch_primed_;
  batch_head_ = nullptr;
  batch_size_ = 0;
  batch_open_ = engine_->bundling_enabled();
  batch_primed_ = false;

  // execute() releases the task, so capture the span name (and the
  // owning tenant, for the completion routing below) up front.
  const std::uint32_t span_name = task->trace_name;
  TenantState* tenant = task->tenant;
  trace::record(trace::EventKind::kTaskBegin, 0, span_name);
  try {
    task->execute(task, *this);
  } catch (...) {
    // Failure capture: the exception is stored in the owning World's
    // FaultState (first error wins) and that graph is cancelled; the
    // epilogue below still runs so the completion is accounted and any
    // successors bundled before the throw are flushed (they will be
    // dropped as cancelled completions at pop).
    engine_->report_task_failure(std::current_exception(), span_name,
                                 index_, tenant);
  }
  trace::record(trace::EventKind::kTaskEnd, 0, span_name);
  bump(tasks_executed_);

  if (batch_head_ != nullptr) {
    engine_->flush_chain(index_, batch_head_);
  }
  batch_head_ = saved_head;
  batch_size_ = saved_size;
  batch_open_ = saved_open;
  batch_primed_ = saved_primed;

  // Completion accounting, after the successor flush so a child's
  // discovery is never outrun by its parent's retirement: through the
  // engine-wide termination wave for classic tasks, through the tenant's
  // pending counter for tenant-tagged ones.
  //
  // Coroutine segments rely on this running unconditionally per
  // execute() call: a body that parked (docs/coroutines.md) already
  // accounted its continuation as +1 discovered *before* publication,
  // so retiring the finished segment here keeps the owning World's
  // pending count >= 1 across the park — a suspended task is
  // discovered-but-not-complete for termination detection.
  if (tenant != nullptr) {
    tenant->on_executed();
  } else {
    engine_->detector().on_completed();
  }
  --nest_;
}

bool Worker::try_bundle(TaskBase* task) {
  if (!batch_open_) return false;
  // The common single-successor case (chains) keeps the plain push fast
  // path; bundling starts with the second eligible successor.
  if (!batch_primed_) {
    batch_primed_ = true;
    return false;
  }
  batch_insert(batch_head_, task);
  if (++batch_size_ >= ExecutionEngine::kMaxBatch) {
    engine_->flush_chain(index_, batch_head_);
    batch_head_ = nullptr;
    batch_size_ = 0;
  }
  return true;
}

}  // namespace ttg
