// Pooled allocation for DataCopy objects (paper Sec. IV-E).
//
// Copies used to be `new`-ed and `delete this`-ed on the system heap
// while tasks already recycled through per-thread MemoryPools. This
// module closes that gap: process-wide size-class pools (one MemoryPool
// per power-of-two class up to kMaxPooledBytes) serve every copy
// allocation, and releases return the storage to the allocating
// thread's free list — two pool atomics instead of a malloc/free pair
// on the data-flow hot path.
//
// Accounting: every allocation reports a *hit* (recycled from a free
// list) or a *miss* (fresh bump-chunk carve, or an oversized heap
// fallback) through both surfaces the Eq. (1) benchmarks read —
// atomics::op_counter (kCopyPoolHit/kCopyPoolMiss) and the trace ring
// (EventKind::kPoolHit/kPoolMiss, aggregated by trace::summarize()).
#pragma once

#include <cstddef>
#include <cstdint>

#include "structures/mempool.hpp"

namespace ttg {

/// Aggregate hit/miss totals over all size-class pools plus the heap
/// fallback path, summed over all threads.
struct CopyPoolStats {
  std::uint64_t hits = 0;            ///< free-list recycles
  std::uint64_t misses = 0;          ///< bump carves + heap fallbacks
  std::uint64_t heap_fallbacks = 0;  ///< allocations too big/aligned to pool
};

CopyPoolStats copy_pool_stats();

namespace detail {

/// Largest object the size-class pools serve; bigger copies (e.g. MRA
/// tensor blocks) fall back to the heap and count as misses.
inline constexpr std::size_t kMaxPooledBytes = 1024;

/// Allocates `bytes` with `align` alignment. On return `pool` is the
/// owning size-class pool, or nullptr when the heap fallback was used
/// (oversized or over-aligned requests). Records hit/miss accounting.
void* copy_alloc(std::size_t bytes, std::size_t align, MemoryPool*& pool);

/// Returns storage obtained from copy_alloc. `align` must match the
/// allocation (only consulted on the heap path).
void copy_free(void* p, MemoryPool* pool, std::size_t align) noexcept;

}  // namespace detail
}  // namespace ttg
