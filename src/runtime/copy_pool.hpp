// Pooled allocation for DataCopy objects (paper Sec. IV-E).
//
// Copies used to be `new`-ed and `delete this`-ed on the system heap
// while tasks already recycled through per-thread MemoryPools. This
// module closes that gap: process-wide size-class pools (one MemoryPool
// per power-of-two class up to kMaxPooledBytes) serve every copy
// allocation, and releases return the storage to the allocating
// thread's free list — two pool atomics instead of a malloc/free pair
// on the data-flow hot path.
//
// Accounting: every allocation reports a *hit* (recycled from a free
// list) or a *miss* (fresh bump-chunk carve, or an oversized heap
// fallback) through both surfaces the Eq. (1) benchmarks read —
// atomics::op_counter (kCopyPoolHit/kCopyPoolMiss) and the trace ring
// (EventKind::kPoolHit/kPoolMiss, aggregated by trace::summarize()).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "structures/mempool.hpp"

namespace ttg {

/// Epoch-scoped bump allocator for replay DataCopies (one per worker
/// thread plus one for the external seeding thread; see docs/replay.md).
/// Everything allocated during a replay epoch is dead by the epoch's
/// fence, so storage is reclaimed wholesale: reset() rewinds the cursor
/// and keeps the chunks for the next epoch. Single-threaded by
/// construction — each arena is only ever touched by its owning thread —
/// so an allocation is cursor arithmetic with no atomics at all (the
/// pool's free-list pair is the next-largest cost the replay path still
/// paid per copy).
class CopyArena {
 public:
  void* alloc(std::size_t bytes, std::size_t align) {
    for (;;) {
      if (chunk_ < chunks_.size()) {
        const auto base =
            reinterpret_cast<std::uintptr_t>(chunks_[chunk_].mem.get());
        const std::uintptr_t p =
            (base + off_ + align - 1) & ~(std::uintptr_t{align} - 1);
        if (p + bytes <= base + chunks_[chunk_].size) {
          off_ = p + bytes - base;
          return reinterpret_cast<void*>(p);
        }
      }
      next_chunk(bytes + align);
    }
  }

  /// Rewinds to the first chunk; all prior allocations must be dead.
  void reset() noexcept {
    chunk_ = 0;
    off_ = 0;
  }

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> mem;
    std::size_t size = 0;
  };

  static constexpr std::size_t kChunkBytes = 64 * 1024;

  void next_chunk(std::size_t min_bytes) {
    // Advance into the next retained chunk when it fits; otherwise
    // splice a new chunk in at that position (an oversized request may
    // orphan a still-usable successor until the next reset()).
    const std::size_t next = chunks_.empty() ? 0 : chunk_ + 1;
    if (next < chunks_.size() && chunks_[next].size >= min_bytes) {
      chunk_ = next;
      off_ = 0;
      return;
    }
    const std::size_t size = std::max(kChunkBytes, min_bytes);
    Chunk c;
    c.mem = std::make_unique<unsigned char[]>(size);
    c.size = size;
    chunks_.insert(chunks_.begin() + static_cast<std::ptrdiff_t>(next),
                   std::move(c));
    chunk_ = next;
    off_ = 0;
  }

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;
  std::size_t off_ = 0;
};

/// Aggregate hit/miss totals over all size-class pools plus the heap
/// fallback path, summed over all threads.
struct CopyPoolStats {
  std::uint64_t hits = 0;            ///< free-list recycles
  std::uint64_t misses = 0;          ///< bump carves + heap fallbacks
  std::uint64_t heap_fallbacks = 0;  ///< allocations too big/aligned to pool
  std::uint64_t remote_returns = 0;  ///< cross-domain frees outboxed
  std::uint64_t remote_free_batches = 0;  ///< outbox flushes pushed home
};

CopyPoolStats copy_pool_stats();

/// Flushes the calling thread's cross-domain free outboxes in every
/// size-class pool, regardless of fill level. Workers call this before
/// parking so remote domains see their storage back at idle/epoch
/// boundaries rather than only at the count threshold.
void copy_pool_flush_remote() noexcept;

/// Arena mode for replay epochs: pre-fills the *calling thread's*
/// free list of the size class serving `bytes` so the next `count`
/// allocations of that class are pool hits (capped to bound the
/// transient footprint; steady-state recycling covers the rest).
/// Oversized requests (> detail::kMaxPooledBytes) are ignored — they
/// heap-allocate regardless.
void copy_pool_prewarm(std::size_t bytes, std::size_t count);

namespace detail {

/// Largest object the size-class pools serve; bigger copies (e.g. MRA
/// tensor blocks) fall back to the heap and count as misses.
inline constexpr std::size_t kMaxPooledBytes = 1024;

/// Allocates `bytes` with `align` alignment. On return `pool` is the
/// owning size-class pool, or nullptr when the heap fallback was used
/// (oversized or over-aligned requests). Records hit/miss accounting.
void* copy_alloc(std::size_t bytes, std::size_t align, MemoryPool*& pool);

/// Returns storage obtained from copy_alloc. `align` must match the
/// allocation (only consulted on the heap path).
void copy_free(void* p, MemoryPool* pool, std::size_t align) noexcept;

}  // namespace detail
}  // namespace ttg
