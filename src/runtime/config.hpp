// Runtime configuration: every optimization from the paper is an
// independent switch, so the "original" and "optimized" systems (and all
// Fig. 9 ablation points) are configurations of the same binary.
#pragma once

#include <string>
#include <thread>

#include "atomics/ordering.hpp"
#include "common/topology.hpp"
#include "sched/scheduler.hpp"
#include "structures/hash_table.hpp"
#include "termdet/termdet.hpp"

namespace ttg {

/// Default PendingTableMode: kBucketLock unless the TTG_PENDING_TABLE
/// environment variable says "delegated" (lets CI/benches flip every
/// Config in a binary without plumbing flags through each harness).
PendingTableMode default_pending_table_mode();

/// Default for Config::numa_pools: true unless TTG_NUMA_POOLS=0.
bool default_numa_pools();

struct Config {
  int num_threads = 0;  ///< 0 = std::thread::hardware_concurrency()
  SchedulerType scheduler = SchedulerType::kLLP;
  /// Workers per steal domain (cache/NUMA group): thieves prefer their
  /// domain siblings before walking the rest of the node (Sec. III-B).
  /// 0 = derive from the discovered topology (workers per memory
  /// domain; flat on single-domain machines); 1 forces a flat order.
  int steal_domain_size = 0;
  TermDetMode termdet = TermDetMode::kThreadLocal;
  bool biased_rwlock = true;            ///< BRAVO wrapper (Sec. IV-D)
  OrderingMode ordering = OrderingMode::kOptimized;  ///< Sec. IV-A

  /// Pending-table synchronization on the insert/match fast path:
  /// per-bucket spinlock (paper baseline) or flat-combining delegation
  /// (docs/scheduling.md "Delegated pending-table insertion").
  PendingTableMode pending_table = default_pending_table_mode();

  /// Topology-aware memory pools: cross-domain frees return home via
  /// batched per-thread outboxes instead of CASing the remote owner's
  /// freelist (docs/scheduling.md "Topology-aware memory").
  bool numa_pools = default_numa_pools();

  /// Successor bundling (Sec. IV-C): tasks made eligible while a task
  /// body runs are collected per worker and handed to the scheduler as
  /// one descending-priority-sorted chain when the body returns, so the
  /// LLP slow path pays a single detach/merge/reattach for the whole
  /// batch instead of one insertion per task.
  bool bundle_successors = true;

  /// Task inlining (the paper's Sec. V-E future-work item): when a task
  /// becomes eligible on a worker thread, execute it immediately in that
  /// worker instead of round-tripping through the scheduler, up to this
  /// nesting depth. 0 disables inlining. Inlined tasks skip the
  /// scheduler's priority ordering — a deliberate trade of ordering
  /// freedom for latency on very short tasks.
  int inline_max_depth = 0;

  /// Stall watchdog (docs/robustness.md): when > 0, the World starts a
  /// monitor thread that samples aggregate progress (tasks executed +
  /// failed + cancelled + messages delivered) and, if the run is live
  /// (pending work) but progress has not moved for this many
  /// milliseconds, dumps runtime state and fires the stall handler
  /// (default: log + abort the World). Must exceed the longest task
  /// body by a comfortable margin. 0 disables the watchdog.
  int watchdog_quiet_ms = 0;

  /// The system as analyzed in Sec. III: LFQ scheduler, per-process
  /// atomic termination counters, plain reader-writer lock, seq_cst.
  static Config original();

  /// The system with all four Sec. IV optimizations.
  static Config optimized();

  /// Resolved worker count.
  int threads() const {
    if (num_threads > 0) return num_threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
  }

  /// Steal-domain size with the topology default applied: the explicit
  /// value if set, otherwise workers-per-memory-domain from sysfs (0 =
  /// flat on single-domain machines — the pre-topology behavior).
  int resolved_steal_domain_size() const {
    if (steal_domain_size > 0) return steal_domain_size;
    return default_steal_domain_size(threads());
  }

  /// Applies the process-global pieces (memory-ordering mode, BRAVO
  /// enablement). Contexts with different global pieces must not run
  /// concurrently in one process.
  void apply_globals() const;

  std::string describe() const;
};

}  // namespace ttg
