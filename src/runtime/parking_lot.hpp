// Futex-style sleep/wake machinery for idle workers.
//
// Workers that repeatedly find no task park here so they do not burn CPU
// (Sec. III-B: "a passive element ... threads continuously query"). The
// protocol is the classic epoch-versioned wait:
//
//   producer                      worker
//   --------                      ------
//   push task                     e = lot.epoch()
//   lot.notify()                  re-check queues   // missed-wakeup guard
//                                 lot.park(e)       // returns if epoch moved
//
// notify() bumps the epoch unconditionally (one uncontended RMW) and only
// issues the expensive notify_all() when a sleeper is registered, so the
// steady-state submission path pays no syscall.
#pragma once

#include <atomic>
#include <cstdint>

#include "sim/hooks.hpp"

namespace ttg {

class ParkingLot {
 public:
  /// Opaque epoch observed before the caller's final empty-check; passed
  /// back to park() to close the missed-wakeup window.
  using Epoch = std::uint64_t;

  ParkingLot() = default;
  ParkingLot(const ParkingLot&) = delete;
  ParkingLot& operator=(const ParkingLot&) = delete;

  /// Reads the current epoch. Call *before* the final re-check of the
  /// work queues: any notify() after this load makes park() return.
  Epoch prepare_park() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Blocks until the epoch moves past `observed`. Spurious returns are
  /// allowed (callers loop around their queue checks anyway).
  void park(Epoch observed) noexcept;

  /// Publishes "there may be work": bumps the epoch and wakes all parked
  /// threads. Cheap when nobody sleeps.
  void notify() noexcept {
    TTG_SIM_POINT("parking.notify");
    epoch_.fetch_add(1, std::memory_order_release);
    if (sleepers_.load(std::memory_order_acquire) > 0) {
      epoch_.notify_all();
    }
    // Under simulation, parked virtual threads block cooperatively in the
    // runner instead of on the futex; wake them so they re-check the
    // epoch (a no-op in the regular build).
    TTG_SIM_NOTIFY();
  }

  /// Number of currently parked threads (diagnostics/tests; racy).
  int sleepers() const noexcept {
    return sleepers_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<Epoch> epoch_{0};
  std::atomic<int> sleepers_{0};
};

}  // namespace ttg
