// TimerWheel: the engine's parking lot for time-suspended continuations.
//
// ttg::suspend_until parks a prepared continuation (see
// runtime/coroutine.hpp) here; a lazily started monitor thread sleeps on
// a condition variable until the earliest deadline and hands each due
// continuation back to the engine through the one submission entry
// point (Context::submit → ExecutionEngine::submit, SubmitHint::
// kDeferred). The suspended task's worker is fully released: while
// frames sleep here the pool runs other Worlds' work, and an engine with
// nothing else to do parks all its workers.
//
// Cancellation: World::purge_cancelled sweeps the wheel with
// cancel_for(fault) — entries governed by the cancelled World are
// removed under the wheel mutex and submitted immediately, where the
// engine's ingress drops them as cancelled completions (the cancel hook
// destroys the parked frame without resuming it). The mutex makes
// expiry and cancellation mutually exclusive, so every parked
// continuation is claimed exactly once.
//
// Structure mirrors the Runtime deadline monitor (ttg/runtime.hpp): a
// mutex + condition variable + min-heap and one lazily created thread —
// a wheel with a thread per engine, not per World, so hundreds of tenant
// Worlds share it. Census: parking counts 1 kSuspend RMW (the mutex
// acquire that publishes the entry), the claim counts 1 more; the
// scheduler round-trip of the resume adds the usual 2 kScheduler.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/coroutine.hpp"
#include "runtime/task.hpp"

namespace ttg {

class FaultState;
class TenantState;

class TimerWheel final : public coro::TimerService {
 public:
  using Clock = std::chrono::steady_clock;
  /// `submit` re-enqueues a due (or cancelled) continuation on the
  /// owning engine; `engine_fault` is the fault state governing tasks
  /// without a tenant tag (cancel_for matching).
  TimerWheel(std::function<void(TaskBase*)> submit,
             const FaultState* engine_fault);
  ~TimerWheel() override;
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// coro::TimerService: parks a prepared continuation until `deadline`.
  void park_until(TaskBase* task, Clock::time_point deadline) override;

  /// Claims every parked continuation governed by `fault` and submits
  /// it immediately (the caller guarantees `fault` is cancelled, so the
  /// engine ingress drops each as a cancelled completion). Returns the
  /// number claimed. Called repeatedly by the purge loop; idempotent.
  std::size_t cancel_for(const FaultState* fault);

  /// Entries currently parked (diagnostics / stall reports).
  std::size_t parked() const;

 private:
  struct Entry {
    Clock::time_point deadline;
    TaskBase* task;
    bool operator>(const Entry& rhs) const { return deadline > rhs.deadline; }
  };

  const FaultState* fault_for(const TaskBase* task) const;
  void thread_main();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Entry> heap_;  // min-heap by deadline (std::*_heap + greater)
  std::function<void(TaskBase*)> submit_;
  const FaultState* engine_fault_;
  std::thread thread_;  // started lazily on the first park
  bool stop_ = false;
};

}  // namespace ttg
