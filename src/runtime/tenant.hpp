// Tenant state: per-World accounting on a shared engine pool.
//
// The multi-tenant serving mode (docs/serving.md) runs many lightweight
// Worlds on one ExecutionEngine. The four-counter termination wave
// (Sec. IV-C) is engine-wide — its per-thread counters belong to the
// worker threads, which are shared — so a tenant World cannot use it to
// detect *its own* quiescence. Instead every tenant task carries a
// TenantState pointer (TaskBase::tenant) and the engine routes the three
// per-task events — discovery, completion, cancelled drop — to the
// tenant's counters:
//
//   pending   +n on discovery, -1 on retirement. The single-location
//             balance argument makes the zero read sound: a task's
//             retirement decrement is ordered after its discovery
//             increment (discovery happens-before submission
//             happens-before execution), so any coherent prefix of the
//             counter's modification order that leaves a task
//             outstanding shows pending >= 1. A sealed epoch (the
//             producer stopped seeding) is over exactly when the waiter
//             reads pending == 0.
//   retired   monotonic progress for the stall watchdog.
//   failed / cancelled  diagnostics, mirroring the engine-wide counters.
//
// These are deliberately *uninstrumented* atomics (no atomic_ops::count):
// the Eq. (1) census models the classic single-World hot path, which
// does not pay them — a task with tenant == nullptr touches none of
// this. See docs/serving.md "Cost model".
//
// AdmissionGate implements the bounded-admission overload policy
// (shed-or-queue) at epoch granularity. It is header-only and marks its
// racy windows with TTG_SIM_POINT so the DST harness
// (tests/dst/dst_serving.cpp) can drive it through adversarial
// interleavings; the TTG_MUTANT_SERVING_ADMIT_NO_FENCE build splits the
// admission reservation into an unfenced load/store pair, which the DST
// suite must catch (scripts/mutation_gate.sh).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>

#include "runtime/fault.hpp"
#include "sim/hooks.hpp"

namespace ttg {

/// What happens when a new epoch would exceed the Runtime's in-flight
/// bound (RuntimeOptions::max_inflight_worlds).
enum class AdmissionPolicy : std::uint8_t {
  kShed = 0,  ///< reject immediately: the epoch ends with Outcome::kShed
  kQueue,     ///< block the submitter in FIFO order until a slot frees
};

/// Per-World state shared between the World façade and the engine hot
/// path. Engine/Worker never touch the World object itself — only this
/// POD-ish block — so a tenant World can be destroyed the moment its
/// last epoch retired.
class TenantState {
 public:
  explicit TenantState(std::uint64_t id) : id_(id) {}
  TenantState(const TenantState&) = delete;
  TenantState& operator=(const TenantState&) = delete;

  std::uint64_t id() const { return id_; }

  /// Accounts the discovery of `n` tasks; must happen before they become
  /// schedulable (same contract as TerminationDetector::on_discovered).
  void on_discovered(std::int64_t n) {
    pending_.fetch_add(n, std::memory_order_acq_rel);
  }

  /// A tenant task finished executing (successfully or with a captured
  /// failure — the failure is counted separately by on_failed()).
  void on_executed() { retire(1); }

  /// A tenant task was dropped by cooperative cancellation.
  void on_cancelled(std::int64_t n = 1) {
    cancelled_.fetch_add(static_cast<std::uint64_t>(n),
                         std::memory_order_relaxed);
    retire(n);
  }

  /// A tenant task body threw (or an injected fault consumed the task).
  /// Only the diagnostic counter: the retirement is accounted by the
  /// caller's on_executed()/on_cancelled() as appropriate.
  void on_failed() { failed_.fetch_add(1, std::memory_order_relaxed); }

  /// Marks the epoch sealed (the external producer stopped seeding) or
  /// open again. While sealed, the retirement that drives pending to
  /// zero wakes the waiter.
  void seal() { sealed_.store(true, std::memory_order_release); }
  void unseal() { sealed_.store(false, std::memory_order_relaxed); }
  bool sealed() const { return sealed_.load(std::memory_order_acquire); }

  /// True when every discovered task retired. Meaningful as an epoch-end
  /// signal only after seal().
  bool quiescent() const {
    return pending_.load(std::memory_order_acquire) == 0;
  }

  std::int64_t pending() const {
    return pending_.load(std::memory_order_relaxed);
  }
  /// Monotonic progress counter (stall watchdog sample).
  std::uint64_t retired() const {
    return retired_.load(std::memory_order_relaxed);
  }
  std::uint64_t failed() const {
    return failed_.load(std::memory_order_relaxed);
  }
  std::uint64_t cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  /// Tasks that actually ran: every retirement that was not a drop.
  std::uint64_t executed() const {
    const std::uint64_t r = retired();
    const std::uint64_t c = cancelled();
    return r >= c ? r - c : 0;
  }

  /// Blocks until quiescent() or `timeout` elapsed (the waiter re-checks
  /// cancellation/purge work on every wakeup, so the wait is timed).
  template <typename Rep, typename Period>
  void wait_progress(const std::chrono::duration<Rep, Period>& timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (quiescent()) return;
    cv_.wait_for(lock, timeout);
  }

  /// Wakes a wait_progress() waiter (fault capture, abort, external
  /// nudge). The empty critical section orders the notify after the
  /// waiter's predicate check.
  void notify() {
    { std::lock_guard<std::mutex> lock(mutex_); }
    cv_.notify_all();
  }

  /// Per-tenant fault state: cancellation, first-error capture, status.
  FaultState fault;

  /// Per-tenant fault-injection plan (World::set_fault_plan); resolved by
  /// the engine at pop boundaries for tenant-tagged tasks.
  std::atomic<const FaultPlan*> fault_plan{nullptr};

  /// Priority boost added to every task priority of this tenant
  /// (WorldOptions::priority_class << kPriorityClassShift), feeding the
  /// LLP scheduler's ordering.
  std::int32_t priority_boost = 0;

 private:
  void retire(std::int64_t n) {
    retired_.fetch_add(static_cast<std::uint64_t>(n),
                       std::memory_order_relaxed);
    if (pending_.fetch_sub(n, std::memory_order_acq_rel) == n &&
        sealed_.load(std::memory_order_acquire)) {
      notify();
    }
  }

  const std::uint64_t id_;
  std::atomic<std::int64_t> pending_{0};
  std::atomic<std::uint64_t> retired_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<bool> sealed_{false};

  std::mutex mutex_;
  std::condition_variable cv_;
};

/// Options for Runtime::make_world().
struct WorldOptions {
  /// Diagnostic name (stall reports, traces).
  std::string name;
  /// Priority class: every task of this World gets
  /// `priority_class << kPriorityClassShift` added to its priority, so
  /// under the LLP scheduler a whole class outranks lower classes while
  /// task-level priorities still order within a class.
  int priority_class = 0;
  /// Per-epoch deadline: when > 0, an epoch still running this many
  /// milliseconds after execute() is aborted through the fault path
  /// (wait() returns Outcome::kAborted, reason "deadline ...").
  int deadline_ms = 0;

  static constexpr int kPriorityClassShift = 20;
};

/// Bounded epoch admission with a shed-or-queue overload policy.
///
/// kShed: try_admit() takes a slot or fails immediately. kQueue:
/// admit() additionally serializes waiters in FIFO ticket order, so a
/// burst of submitters drains fairly instead of racing for freed slots.
/// release() returns a slot (exactly once per successful admission).
///
/// Lock-free on atomics so the DST build can interleave it; the sim
/// points mark the windows the serving_admit_no_fence mutant widens.
class AdmissionGate {
 public:
  /// `max_inflight <= 0` disables the bound (every admit succeeds).
  AdmissionGate(int max_inflight, AdmissionPolicy policy)
      : limit_(max_inflight), policy_(policy) {}
  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  AdmissionPolicy policy() const { return policy_; }
  int limit() const { return limit_; }
  int inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  std::uint64_t shed() const {
    return shed_.load(std::memory_order_relaxed);
  }

  /// One admission attempt: reserves a slot if the bound allows, fails
  /// (sheds) otherwise. Used directly under AdmissionPolicy::kShed.
  bool try_admit() {
    if (try_reserve()) return true;
    shed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  /// Blocking FIFO admission (AdmissionPolicy::kQueue). `pause` is
  /// invoked between probes (std::this_thread::yield in the runtime,
  /// sim::preemption_point under DST). Returns when a slot is reserved.
  template <typename Pause>
  void admit(Pause&& pause) {
    if (limit_ <= 0) return;
    const std::uint64_t ticket =
        tail_.fetch_add(1, std::memory_order_relaxed);
    for (;;) {
      TTG_SIM_POINT("admission.queue.probe");
      if (head_.load(std::memory_order_acquire) == ticket) {
        // Front of the queue: only this waiter may take the next freed
        // slot, which is what makes the order FIFO.
        if (try_reserve()) {
          head_.store(ticket + 1, std::memory_order_release);
          TTG_SIM_NOTIFY();
          return;
        }
      }
      pause();
    }
  }

  /// Returns a slot. Call exactly once per successful try_admit()/
  /// admit().
  void release() {
    if (limit_ <= 0) return;
    TTG_SIM_POINT("admission.release");
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    TTG_SIM_NOTIFY();
  }

 private:
  /// The reservation itself, shared by both policies (no shed
  /// accounting: a kQueue probe that finds the gate full is not a shed).
  bool try_reserve() {
    if (limit_ <= 0) return true;
    int cur = inflight_.load(std::memory_order_acquire);
    for (;;) {
      if (cur >= limit_) return false;
      TTG_SIM_POINT("admission.reserve");
#if defined(TTG_MUTANT_SERVING_ADMIT_NO_FENCE)
      // MUTANT: the reservation's read-modify-write is split into an
      // unfenced load/store pair. Two racing admissions can both read
      // the same in-flight count and the gate over-admits past its
      // bound — the DST serving scenario must observe the violation.
      inflight_.store(cur + 1, std::memory_order_relaxed);
      TTG_SIM_POINT("admission.reserve.split");
      return true;
#else
      if (inflight_.compare_exchange_weak(cur, cur + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        return true;
      }
#endif
    }
  }

  const int limit_;
  const AdmissionPolicy policy_;
  std::atomic<int> inflight_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
};

}  // namespace ttg
