#include "runtime/timer_wheel.hpp"

#include <algorithm>
#include <cassert>

#include "runtime/fault.hpp"
#include "runtime/tenant.hpp"

namespace ttg {

TimerWheel::TimerWheel(std::function<void(TaskBase*)> submit,
                       const FaultState* engine_fault)
    : submit_(std::move(submit)), engine_fault_(engine_fault) {}

TimerWheel::~TimerWheel() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    // An engine never dies with work outstanding (its Worlds waited),
    // so parked entries here would be leaked frames.
    assert(heap_.empty() && "TimerWheel destroyed with parked frames");
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

const FaultState* TimerWheel::fault_for(const TaskBase* task) const {
  return task->tenant != nullptr ? &task->tenant->fault : engine_fault_;
}

void TimerWheel::park_until(TaskBase* task, Clock::time_point deadline) {
  // The mutex acquire is the publication RMW of the park (census:
  // 1 kSuspend); from the moment the entry is in the heap the monitor
  // thread may claim it, so the caller must not touch `task` after
  // this returns.
  atomic_ops::count(AtomicOpCategory::kSuspend);
  bool wake;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!thread_.joinable()) {
      thread_ = std::thread([this] { thread_main(); });
    }
    wake = heap_.empty() || deadline < heap_.front().deadline;
    heap_.push_back(Entry{deadline, task});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }
  // Re-arm the monitor only when the new entry moved the next deadline.
  if (wake) cv_.notify_one();
}

std::size_t TimerWheel::cancel_for(const FaultState* fault) {
  std::vector<TaskBase*> claimed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto out = heap_.begin();
    for (auto& e : heap_) {
      if (fault_for(e.task) == fault) {
        claimed.push_back(e.task);
      } else {
        *out++ = e;
      }
    }
    if (claimed.empty()) return 0;
    heap_.erase(out, heap_.end());
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  }
  for (TaskBase* t : claimed) {
    // The claim RMW (census: 1 kSuspend), then straight back through
    // submit: the engine's ingress sees the cancelled World and drops
    // the continuation via its cancel hook — the frame is destroyed at
    // its suspension point, never resumed onto the dead World.
    atomic_ops::count(AtomicOpCategory::kSuspend);
    submit_(t);
  }
  return claimed.size();
}

std::size_t TimerWheel::parked() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return heap_.size();
}

void TimerWheel::thread_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    if (heap_.empty()) {
      cv_.wait(lock);
      continue;
    }
    const Clock::time_point next = heap_.front().deadline;
    if (Clock::now() < next) {
      cv_.wait_until(lock, next);
      continue;
    }
    // Claim every due entry, then submit outside the lock (submit may
    // run the engine's drop path, which must not re-enter the wheel).
    std::vector<TaskBase*> due;
    const Clock::time_point now = Clock::now();
    while (!heap_.empty() && heap_.front().deadline <= now) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
      due.push_back(heap_.back().task);
      heap_.pop_back();
    }
    lock.unlock();
    for (TaskBase* t : due) {
      atomic_ops::count(AtomicOpCategory::kSuspend);
      submit_(t);
    }
    lock.lock();
  }
}

}  // namespace ttg
