// Execution context: the PaRSEC-like runtime core.
//
// A Context owns a pool of worker threads, a scheduler, and (unless one
// is shared across simulated ranks) a termination detector. Workers run
// the classic passive-scheduler loop: pop a task, execute it, account
// completion; when no work is found they flush their termination
// counters (Sec. IV-B), advance the termination wave, and eventually
// park on a futex-style signal so idle workers do not burn CPU.
//
// Epoch protocol (mirrors ttg::execute()/ttg::fence()):
//   Context ctx(cfg);           // workers start parked
//   ctx.begin();                // main thread becomes an active producer
//   ctx.spawn(task); ...        // discover + schedule work
//   ctx.fence();                // wait for global termination
//   ctx.begin(); ...            // next epoch reuses the same workers
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/cache.hpp"
#include "runtime/config.hpp"
#include "runtime/task.hpp"
#include "sched/scheduler.hpp"
#include "termdet/termdet.hpp"

namespace ttg {

class Context;

/// Per-worker state; passed to every task body.
class Worker {
 public:
  Context& context() const { return *context_; }
  int index() const { return index_; }
  int rank() const { return rank_; }

  /// Tasks executed by this worker (diagnostics).
  std::uint64_t tasks_executed() const { return tasks_executed_; }

  /// Current task-inlining nesting depth on this worker.
  int inline_depth() const { return inline_depth_; }

 private:
  friend class Context;
  Context* context_ = nullptr;
  int index_ = kExternalWorker;
  int rank_ = 0;
  std::uint64_t tasks_executed_ = 0;
  int inline_depth_ = 0;
  // Successor-bundling scope (Sec. IV-C): chain of tasks made eligible
  // by the currently running task, sorted by descending priority.
  TaskBase* batch_head_ = nullptr;
  int batch_size_ = 0;
  bool batch_open_ = false;
  bool batch_primed_ = false;  // first successor went straight through
};

class Context {
 public:
  /// Bundled-successor chains flush early at this size so a very wide
  /// fan-out does not starve other workers of stealable tasks.
  static constexpr int kMaxBatch = 16;

  /// Source of non-task work (e.g. the simulated-rank active-message
  /// queue) polled by workers that found no task. drain() must account
  /// any discovered work through the termination detector itself.
  class ProgressSource {
   public:
    virtual ~ProgressSource() = default;
    virtual bool empty() = 0;
    virtual void drain(Worker& worker) = 0;
  };

  /// Creates a self-contained single-rank context.
  explicit Context(const Config& config);

  /// Creates a context that is one simulated rank of a multi-rank world;
  /// `detector` is shared across the ranks and owned by the caller.
  Context(const Config& config, TerminationDetector* detector, int rank);

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;
  ~Context();

  const Config& config() const { return config_; }
  int num_threads() const { return num_threads_; }
  int rank() const { return rank_; }
  Scheduler& scheduler() { return *scheduler_; }
  TerminationDetector& detector() { return *detector_; }

  /// Worker currently running on this thread, or nullptr for external
  /// threads (e.g. the application's main thread).
  static Worker* current_worker();

  /// Marks the calling (external) thread as an active producer for a new
  /// or continuing epoch. Must be called before the first spawn of an
  /// epoch and after every fence() that is followed by more work.
  void begin();

  /// Accounts the discovery of `n` tasks on the calling thread. Must
  /// happen before the tasks become schedulable.
  void on_discovered(std::int64_t n = 1) { detector_->on_discovered(n); }

  /// Schedules an already-discovered task.
  void schedule(TaskBase* task);

  /// Schedules a descending-priority-sorted chain of already-discovered
  /// tasks in one scheduler operation.
  void schedule_chain(TaskBase* first);

  /// Convenience: on_discovered(1) + schedule(task).
  void spawn(TaskBase* task) {
    on_discovered(1);
    schedule(task);
  }

  /// Schedules an already-discovered task, or — when task inlining is
  /// enabled (Config::inline_max_depth) and the caller is a worker of
  /// this context below the depth limit — executes it immediately on
  /// this thread, skipping the scheduler round trip entirely. With
  /// successor bundling enabled, tasks made eligible inside a running
  /// task body are batched and pushed as one sorted chain when the body
  /// returns (Sec. IV-C).
  void schedule_or_inline(TaskBase* task);

  /// Executes one task on `worker` with a successor-bundling scope and
  /// completion accounting. Used by the worker loop and the inlining
  /// path.
  void run_task(TaskBase* task, Worker& worker);

  /// Blocks the calling (external) thread until the termination detector
  /// announces that all discovered work completed.
  void fence();

  /// Resets the termination detector for the next epoch. Only valid
  /// after fence() returned and before new work is spawned.
  void reset_epoch();

  /// Total tasks executed by all workers since construction.
  std::uint64_t total_tasks_executed() const;

  /// Wakes parked workers; called automatically on schedule.
  void notify_work();

  /// Installs a progress source. Must be set before work is spawned and
  /// outlive the context (or be reset to nullptr while quiescent).
  void set_progress_source(ProgressSource* source) {
    progress_.store(source, std::memory_order_release);
  }

 private:
  void worker_main(int index);

  Config config_;
  int num_threads_;
  int rank_ = 0;

  std::unique_ptr<TerminationDetector> owned_detector_;
  TerminationDetector* detector_;
  std::unique_ptr<Scheduler> scheduler_;

  std::vector<std::thread> threads_;
  std::unique_ptr<CachePadded<Worker>[]> workers_;

  std::atomic<ProgressSource*> progress_{nullptr};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> signal_{0};
  std::atomic<int> sleepers_{0};
};

}  // namespace ttg
