// Execution context: the public façade of the runtime core.
//
// The runtime is layered (see DESIGN.md "Runtime layering"):
//
//   Context          — epoch protocol, discovery accounting, submit()
//   ExecutionEngine  — worker loop, the single submission path, scheduler
//   Worker           — per-thread state: bundling scope, inline depth
//   ParkingLot       — futex-style sleep/wake for idle workers
//
// A Context owns the configuration, (unless shared across simulated
// ranks) a termination detector, and one ExecutionEngine driving the
// worker pool. All task submission funnels through Context::submit(task,
// SubmitHint) — there is deliberately no second entry point.
//
// Epoch protocol (mirrors ttg::execute()/ttg::fence()):
//   Context ctx(cfg);              // workers start parked
//   ctx.begin();                   // main thread becomes an active producer
//   ctx.on_discovered();
//   ctx.submit(task); ...          // discover + schedule work
//   ctx.fence();                   // wait for global termination
//   ctx.begin(); ...               // next epoch reuses the same workers
#pragma once

#include <cstdint>
#include <memory>

#include "runtime/config.hpp"
#include "runtime/engine.hpp"
#include "runtime/task.hpp"
#include "sched/scheduler.hpp"
#include "termdet/termdet.hpp"

namespace ttg {

class Context {
 public:
  /// Kept as a nested alias so existing code can keep saying
  /// Context::ProgressSource; the interface lives with the engine.
  using ProgressSource = ttg::ProgressSource;

  /// Creates a self-contained single-rank context.
  explicit Context(const Config& config);

  /// Creates a context that is one simulated rank of a multi-rank world;
  /// `detector` and `fault` are shared across the ranks and owned by the
  /// caller (either may be null, in which case this context owns one).
  Context(const Config& config, TerminationDetector* detector, int rank,
          FaultState* fault = nullptr);

  /// Creates a lightweight tenant context that *borrows* a shared engine
  /// (a Runtime's worker pool, docs/serving.md) instead of owning one.
  /// Discovery accounting and the cancellation edge route to `tenant`;
  /// the engine, its detector and its workers are untouched by this
  /// context's lifecycle, so construction/destruction is a few pointer
  /// stores — cheap enough for hundreds of concurrent Worlds.
  Context(const Config& config, ExecutionEngine& engine,
          TenantState* tenant);

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;
  ~Context();

  const Config& config() const { return config_; }
  int num_threads() const { return engine_->num_threads(); }
  int rank() const { return engine_->rank(); }
  Scheduler& scheduler() { return engine_->scheduler(); }
  TerminationDetector& detector() { return *detector_; }
  ExecutionEngine& engine() { return *engine_; }
  FaultState& fault() { return *fault_; }

  /// Worker currently running on this thread, or nullptr for external
  /// threads (e.g. the application's main thread).
  static Worker* current_worker() {
    return ExecutionEngine::current_worker();
  }

  /// Marks the calling (external) thread as an active producer for a new
  /// or continuing epoch. Must be called before the first submit of an
  /// epoch and after every fence() that is followed by more work.
  /// Tenant contexts are a no-op: their epoch lifecycle is the tenant's
  /// pending counter, not the shared engine's wave.
  void begin() {
    if (tenant_ != nullptr) return;
    detector_->on_resume();
  }

  /// Accounts the discovery of `n` tasks on the calling thread. Must
  /// happen before the tasks become schedulable. Rank-aware: a thread
  /// that never attached to the detector (an external helper seeding
  /// the graph) accounts directly on this context's rank, so the
  /// discovery is never stranded in an unflushed per-thread counter.
  /// Tenant contexts account on the tenant's pending counter instead.
  void on_discovered(std::int64_t n = 1) {
    if (tenant_ != nullptr) {
      tenant_->on_discovered(n);
      return;
    }
    detector_->on_discovered(rank(), n);
  }

  /// The tenant this context accounts to (null for classic contexts).
  TenantState* tenant() const { return tenant_; }

  /// Submits an already-discovered task for execution — the one
  /// submission entry point. See SubmitHint (runtime/engine.hpp) for the
  /// deferred/chain/may-inline shapes.
  void submit(TaskBase* task, SubmitHint hint = SubmitHint::kDeferred) {
    engine_->submit(task, hint);
  }

  /// Blocks the calling (external) thread until the termination detector
  /// announces that all discovered work completed.
  void fence();

  /// Requests a cooperative abort of the current run: newly activated
  /// tasks are dropped as cancelled completions, fence() still
  /// converges, and fault().status() reports kAborted. Safe from any
  /// thread.
  void abort(std::string reason);

  /// Installs (or clears) a seeded fault-injection plan; see FaultPlan.
  /// On a tenant context the plan applies only to this tenant's tasks.
  void set_fault_plan(const FaultPlan* plan) {
    if (tenant_ != nullptr) {
      tenant_->fault_plan.store(plan, std::memory_order_release);
      return;
    }
    engine_->set_fault_plan(plan);
  }

  /// Resets the termination detector for the next epoch. Only valid
  /// after fence() returned and before new work is submitted.
  void reset_epoch();

  /// Total tasks executed by all workers since construction.
  std::uint64_t total_tasks_executed() const {
    return engine_->total_tasks_executed();
  }

  /// Wakes parked workers; called automatically on submit.
  void notify_work() { engine_->notify_work(); }

  /// Installs a progress source. Must be set before work is submitted
  /// and outlive the context (or be reset to nullptr while quiescent).
  void set_progress_source(ProgressSource* source) {
    engine_->set_progress_source(source);
  }

 private:
  Config config_;
  std::unique_ptr<TerminationDetector> owned_detector_;
  TerminationDetector* detector_;
  std::unique_ptr<FaultState> owned_fault_;
  FaultState* fault_;
  TenantState* tenant_ = nullptr;
  // Constructed last / destroyed first: an owned engine's workers
  // reference the detector, fault state and config above. Tenant
  // contexts borrow a Runtime's engine instead (owned_engine_ stays
  // null) and must not outlive it.
  std::unique_ptr<ExecutionEngine> owned_engine_;
  ExecutionEngine* engine_ = nullptr;
};

}  // namespace ttg
