#include "runtime/engine.hpp"

#include <chrono>
#include <string>

#include "common/busy_wait.hpp"
#include "common/rng.hpp"
#include "common/topology.hpp"
#include "runtime/context.hpp"
#include "runtime/copy_pool.hpp"
#include "runtime/timer_wheel.hpp"
#include "runtime/trace.hpp"

namespace ttg {

namespace {
thread_local Worker* t_current_worker = nullptr;
}  // namespace

Worker* ExecutionEngine::current_worker() { return t_current_worker; }

ExecutionEngine::ExecutionEngine(Context& owner, const Config& config,
                                 TerminationDetector& detector,
                                 FaultState& fault, int rank)
    : num_threads_(config.threads()),
      rank_(rank),
      inline_max_depth_(config.inline_max_depth),
      bundle_successors_(config.bundle_successors),
      sched_trace_name_(trace::intern(to_string(config.scheduler))),
      detector_(&detector),
      fault_(&fault) {
  steal_domain_size_ = config.resolved_steal_domain_size();
  scheduler_ = make_scheduler(config.scheduler, num_threads_,
                              steal_domain_size_);
  timers_ = std::make_unique<TimerWheel>(
      [this](TaskBase* t) { submit(t, SubmitHint::kDeferred); }, fault_);
  {
    auto& registry = trace::MetricsRegistry::instance();
    const std::string prefix = "engine.r" + std::to_string(rank_) + ".";
    metric_ids_.push_back(registry.add(
        prefix + "steal_attempts",
        [this] { return scheduler_->steal_stats().attempts; }));
    metric_ids_.push_back(registry.add(
        prefix + "steal_successes",
        [this] { return scheduler_->steal_stats().successes; }));
    metric_ids_.push_back(registry.add(
        prefix + "steal_batches",
        [this] { return scheduler_->steal_stats().batches; }));
    metric_ids_.push_back(registry.add(
        prefix + "steal_batch_tasks",
        [this] { return scheduler_->steal_stats().batch_tasks; }));
    metric_ids_.push_back(registry.add(
        prefix + "ingress_hits",
        [this] { return scheduler_->steal_stats().ingress_hits; }));
    metric_ids_.push_back(registry.add(
        prefix + "tasks_executed",
        [this] { return total_tasks_executed(); }));
    metric_ids_.push_back(registry.add(
        prefix + "failed_tasks", [this] { return failed_tasks(); }));
    metric_ids_.push_back(registry.add(
        prefix + "cancelled_tasks",
        [this] { return cancelled_tasks(); }));
    metric_ids_.push_back(registry.add(
        prefix + "backoff_parks", [this] {
          std::uint64_t n = 0;
          for (int i = 0; i < num_threads_; ++i) n += workers_[i]->parks();
          return n;
        }));
  }
  workers_ = std::make_unique<CachePadded<Worker>[]>(
      static_cast<std::size_t>(num_threads_));
  fault_draws_ = std::make_unique<CachePadded<std::uint64_t>[]>(
      static_cast<std::size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) fault_draws_[i].value = 0;
  for (int i = 0; i < num_threads_; ++i) {
    Worker& w = workers_[i].value;
    w.engine_ = this;
    w.context_ = &owner;
    w.index_ = i;
    w.rank_ = rank_;
  }
  threads_.reserve(static_cast<std::size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

ExecutionEngine::~ExecutionEngine() {
  // Unregister first: the readers dereference the scheduler and workers.
  for (int id : metric_ids_) trace::MetricsRegistry::instance().remove(id);
  stop_.store(true, std::memory_order_release);
  notify_work();
  for (auto& t : threads_) t.join();
}

void ExecutionEngine::submit(TaskBase* task, SubmitHint hint) {
  if (task == nullptr) return;
  if (fault_for(task).cancelled()) {
    // Cooperative cancellation: newly activated tasks are dropped at
    // ingress instead of scheduled. One relaxed load on the clean path.
    // A chain comes from one producer body, so its tasks share one
    // owner; the head's fault state governs the whole chain and each
    // drop routes per task anyway.
    while (task != nullptr) {
      TaskBase* next =
          hint == SubmitHint::kChain
              ? static_cast<TaskBase*>(
                    task->next.load(std::memory_order_relaxed))
                                     : nullptr;
      drop_cancelled(task);
      task = next;
    }
    return;
  }
  Worker* w = t_current_worker;
  const bool local = (w != nullptr && w->engine_ == this);
  const int worker = local ? w->index_ : kExternalWorker;
  switch (hint) {
    case SubmitHint::kChain:
      if (trace::enabled_for(trace::kCatSched)) {
        std::uint64_t len = 0;
        for (LifoNode* n = task; n != nullptr; n = n->next) ++len;
        trace::record(trace::EventKind::kSchedPushChain, len,
                      sched_trace_name_);
      }
      scheduler_->push_chain(worker, task);
      notify_work();
      return;
    case SubmitHint::kTailChain:
      if (local && w->try_chain(task)) return;
      [[fallthrough]];
    case SubmitHint::kMayInline:
      if (local) {
        if (inline_max_depth_ > 0 && w->inline_depth_ < inline_max_depth_) {
          trace::record(trace::EventKind::kInlineExec,
                        static_cast<std::uint64_t>(w->index_),
                        task->trace_name);
          w->run_inline(task);
          return;
        }
        if (w->try_bundle(task)) return;
      }
      [[fallthrough]];
    case SubmitHint::kDeferred:
      trace::record(trace::EventKind::kSchedPush,
                    static_cast<std::uint64_t>(
                        worker == kExternalWorker ? ~0u : worker),
                    sched_trace_name_);
      scheduler_->push(worker, task);
      notify_work();
      return;
  }
}

void ExecutionEngine::flush_chain(int worker_index, TaskBase* head) {
  if (trace::enabled_for(trace::kCatSched)) {
    std::uint64_t len = 0;
    for (LifoNode* n = head; n != nullptr; n = n->next) ++len;
    trace::record(trace::EventKind::kSchedPushChain, len,
                  sched_trace_name_);
  }
  scheduler_->push_chain(worker_index, head);
  notify_work();
}

std::uint64_t ExecutionEngine::total_tasks_executed() const {
  std::uint64_t n = 0;
  for (int i = 0; i < num_threads_; ++i) n += workers_[i]->tasks_executed();
  return n;
}

void ExecutionEngine::worker_main(int index) {
  Worker& self = workers_[index].value;
  t_current_worker = &self;
  // Pin the worker's memory domain to its steal domain so the pools,
  // ingress shards and steal order all share one placement map.
  this_thread::set_domain(worker_domain(index, steal_domain_size_));

  detector_->thread_attach(rank_);
  // A worker starts with nothing to do.
  detector_->on_idle();

  IdleBackoff backoff;
  // Last backoff stage a trace instant was recorded for; a kBackoffStage
  // instant fires only on stage *transitions* so the trace stays sparse.
  auto last_stage = IdleBackoff::Action::kSpin;
  while (!stop_.load(std::memory_order_acquire)) {
    if (LifoNode* node = scheduler_->pop(index); node != nullptr) {
      trace::record(trace::EventKind::kSchedPop,
                    static_cast<std::uint64_t>(index), sched_trace_name_);
      detector_->on_resume();
      backoff.on_work();
      last_stage = IdleBackoff::Action::kSpin;
      auto* task = static_cast<TaskBase*>(node);
      if (fault_for(task).cancelled()) {
        drop_cancelled(task);
        continue;
      }
      if (inject_fault(task, index)) continue;
      self.run_task(task);
      continue;
    }

    if (ProgressSource* src = progress_.load(std::memory_order_acquire);
        src != nullptr && !src->empty()) {
      detector_->on_resume();
      src->drain(self);
      backoff.on_work();
      last_stage = IdleBackoff::Action::kSpin;
      continue;
    }

    detector_->on_idle();
    const IdleBackoff::Action action = backoff.next();
    if (action != last_stage) {
      trace::record(trace::EventKind::kBackoffStage,
                    static_cast<std::uint64_t>(action));
      last_stage = action;
    }
    if (action == IdleBackoff::Action::kSpin) {
      for (int i = backoff.relax_count(); i > 0; --i) cpu_relax();
      if (backoff.spin_round_yields()) std::this_thread::yield();
      continue;
    }
    if (action == IdleBackoff::Action::kYield) {
      std::this_thread::yield();
      continue;
    }

    // Park until submit()/shutdown bumps the parking-lot epoch. The
    // re-check of the scheduler between reading the epoch and waiting
    // prevents a missed wakeup for pushes that happened before the load.
    const ParkingLot::Epoch epoch = parking_.prepare_park();
    if (LifoNode* node = scheduler_->pop(index); node != nullptr) {
      trace::record(trace::EventKind::kSchedPop,
                    static_cast<std::uint64_t>(index), sched_trace_name_);
      detector_->on_resume();
      backoff.on_work();
      last_stage = IdleBackoff::Action::kSpin;
      auto* task = static_cast<TaskBase*>(node);
      if (fault_for(task).cancelled()) {
        drop_cancelled(task);
        continue;
      }
      if (inject_fault(task, index)) continue;
      self.run_task(task);
      continue;
    }
    if (ProgressSource* src = progress_.load(std::memory_order_acquire);
        src != nullptr && !src->empty()) {
      continue;  // a message landed after the earlier probe
    }
    if (stop_.load(std::memory_order_acquire)) break;
    // About to sleep: return any batched cross-domain frees so remote
    // domains are not starved of their storage while we idle.
    copy_pool_flush_remote();
    trace::record(trace::EventKind::kIdleBegin);
    parking_.park(epoch);
    trace::record(trace::EventKind::kIdleEnd);
    backoff.on_park();
    Worker::bump(self.parks_);
    last_stage = IdleBackoff::Action::kSpin;
  }

  t_current_worker = nullptr;
}

void ExecutionEngine::report_task_failure(std::exception_ptr ep,
                                          std::uint32_t span_name,
                                          int worker, TenantState* tenant) {
  failed_tasks_.fetch_add(1, std::memory_order_relaxed);
  trace::record(trace::EventKind::kTaskFailed,
                static_cast<std::uint64_t>(worker), span_name);
  FaultState& fault = tenant != nullptr ? tenant->fault : *fault_;
  if (tenant != nullptr) tenant->on_failed();
  if (fault.on_task_exception(ep)) {
    trace::record(trace::EventKind::kWorldAborted,
                  static_cast<std::uint64_t>(Outcome::kFailed));
    // Parked workers must observe the cancellation so they drain (and
    // drop) whatever is still queued instead of sleeping through it;
    // a tenant waiter additionally gets an immediate wakeup.
    notify_work();
    if (tenant != nullptr) tenant->notify();
  }
}

void ExecutionEngine::drop_cancelled(TaskBase* task) {
  TenantState* tenant = task->tenant;
  if (task->cancel != nullptr) {
    task->cancel(task);
  } else if (task->pool != nullptr) {
    task->pool->deallocate(task);
  }
  // A task with neither hook nor pool is owned externally; dropping the
  // reference is the best the runtime can do.
  cancelled_tasks_.fetch_add(1, std::memory_order_relaxed);
  if (tenant != nullptr) {
    tenant->on_cancelled();
  } else {
    detector_->on_cancelled(rank_, 1);
  }
}

bool ExecutionEngine::inject_fault(TaskBase* task, int worker_index) {
  TenantState* tenant = task->tenant;
  const FaultPlan* plan =
      tenant != nullptr ? tenant->fault_plan.load(std::memory_order_acquire)
                        : fault_plan_.load(std::memory_order_acquire);
  if (plan == nullptr) return false;
  // Stateless deterministic draw: seed × worker × per-worker counter.
  std::uint64_t& counter = fault_draws_[worker_index].value;
  const std::uint64_t draw = mix64(
      plan->seed ^ mix64(static_cast<std::uint64_t>(worker_index) + 1) ^
      ++counter);
  const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
  if (u < plan->throw_prob) {
    plan->injected_throws.fetch_add(1, std::memory_order_relaxed);
    report_task_failure(
        std::make_exception_ptr(FaultInjected("injected task fault")),
        task->trace_name, worker_index, tenant);
    // The task never runs: release it and retire its discovery so the
    // termination wave (or the tenant's pending count) still converges.
    if (task->cancel != nullptr) {
      task->cancel(task);
    } else if (task->pool != nullptr) {
      task->pool->deallocate(task);
    }
    if (tenant != nullptr) {
      tenant->on_executed();
    } else {
      detector_->on_completed();
    }
    return true;
  }
  if (u < plan->throw_prob + plan->delay_prob) {
    plan->injected_delays.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(plan->delay_us));
  }
  return false;
}

}  // namespace ttg
