// Suspendable task bodies: C++20 coroutines over the small-task runtime.
//
// Upstream TTG gates ttg/coroutine.h behind TTG_HAVE_COROUTINE and lets
// TT::op return a coroutine handle (TTG_PROCESS_TT_OP_RETURN). This is
// the reproduction's equivalent: a task body may return ttg::resumable
// and co_await the awaitables below; the suspended body releases its
// worker and is resumed later as a *ready continuation* through the
// existing Context::submit() — the task object doubles as the
// continuation, so resumption rides the audited submit→pop→execute path
// with no second scheduler entry point.
//
// Protocol (docs/coroutines.md):
//
//  * A suspension is prepared on the suspending worker *before* the
//    continuation is published to any event source: the executing layer
//    (TT::run) snapshots its thread-local frames into the task record,
//    points TaskBase::execute at the resume trampoline, and accounts the
//    continuation as newly discovered work (+1). The worker epilogue
//    then retires the finished *segment* as a completion, so the owning
//    World's census never dips: a suspended task is discovered-but-not-
//    complete for termination detection, and TaskBase::tenant keeps
//    routing the accounting to the right World.
//  * Exactly one claimer resumes a parked continuation: the event
//    source (timer expiry, InputGate::fulfill) or the cancellation
//    purge. Claims are exclusive (one atomic handoff per waiter), so a
//    frame is resumed — or destroyed — exactly once.
//  * Cancellation never resumes a body onto a dead World: a claimed
//    continuation goes back through submit(), whose ingress drops tasks
//    of a cancelled World via the TaskBase::cancel hook, which destroys
//    the parked frame at its suspension point.
//
// Census (Eq. 1): a suspend/resume pair through a rendezvous (InputGate,
// timer wheel) adds exactly 2 kSuspend RMWs (park publication + resume
// claim) and 2 kScheduler RMWs (continuation push + pop) on top of the
// task's 4·N_i+4; ttg::yield skips the rendezvous and adds only the 2
// scheduler operations. Asserted exactly in tests/test_atomic_model.cpp.
//
// This header is deliberately engine-free (TaskBase + atomics + sim
// hooks only) so the DST harness compiles it instrumented into its
// model scenarios (tests/dst/dst_coroutine.cpp) — the same code the
// production library runs. The TTG_MUTANT_COROUTINE_LOST_RESUME and
// TTG_MUTANT_COROUTINE_DOUBLE_RESUME builds plant the two classic
// suspend/resume bugs here; the DST suite must catch both
// (scripts/mutation_gate.sh).
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "atomics/op_counter.hpp"
#include "atomics/ordering.hpp"
#include "runtime/task.hpp"
#include "sim/hooks.hpp"

namespace ttg {

class resumable;

namespace coro {

/// Timer backend for ttg::suspend_until — implemented by the engine's
/// TimerWheel (runtime/timer_wheel.hpp). Null in environments without a
/// timer (DST models), where timed suspension degrades to a yield.
class TimerService {
 public:
  virtual ~TimerService() = default;
  /// Parks the published continuation until `deadline`, then submits it
  /// back to its engine as a ready continuation (or lets the engine
  /// drop it as a cancelled completion if its World died meanwhile).
  virtual void park_until(TaskBase* task,
                          std::chrono::steady_clock::time_point deadline) = 0;
};

/// Per-frame runtime environment, captured into the coroutine promise
/// from the thread-local InstallGuard the executing layer sets up
/// around the body call. POD by design: the promise copies it once.
struct Host {
  /// The task record doubling as the schedulable continuation.
  TaskBase* task = nullptr;
  /// Timer backend for suspend_until (may be null).
  TimerService* timers = nullptr;
  /// Executing-layer hook, run on the suspending worker exactly once
  /// per suspension *before* the continuation is published anywhere:
  /// must snapshot thread-local execution state into the record, point
  /// task->execute at the resume trampoline (handing it `coro_addr`,
  /// the frame's std::coroutine_handle<>::address()), account the
  /// continuation as discovered, and set t_suspend_pending.
  void (*prepare_suspend)(Host&, void* coro_addr) = nullptr;
  /// Executing-layer hook: submits `task` to its engine as a ready
  /// continuation (Context::submit, SubmitHint::kDeferred).
  void (*submit)(Host&) = nullptr;
  /// Executing-layer state (the owning TT; opaque here).
  void* backend = nullptr;
};

namespace detail {

/// Set by Host::prepare_suspend on the suspending thread; the executor
/// (TT::run / the resume trampoline) saves, clears and reads it around
/// every segment to learn whether the segment parked — it must not
/// touch the frame or the record after a park, since a concurrent
/// claimer may already be resuming (or destroying) them.
inline thread_local bool t_suspend_pending = false;

/// The Host template the next resumable frame created on this thread
/// copies into its promise (see InstallGuard).
inline thread_local const Host* t_install = nullptr;

}  // namespace detail

/// Installs the Host template for resumable frames created on this
/// thread while the guard lives (the executing layer wraps the body
/// call; nests — inlined tasks save/restore).
class InstallGuard {
 public:
  explicit InstallGuard(const Host* host) noexcept
      : saved_(detail::t_install) {
    detail::t_install = host;
  }
  ~InstallGuard() { detail::t_install = saved_; }
  InstallGuard(const InstallGuard&) = delete;
  InstallGuard& operator=(const InstallGuard&) = delete;

 private:
  const Host* saved_;
};

/// The resume-enqueue: hands a claimed continuation back to its engine.
/// After this call the claimer owns nothing — the frame may already be
/// running (or destroyed) on another worker.
inline void submit_resume(Host& host) {
  TTG_SIM_POINT("coro.resume_enqueue");
  host.submit(host);
}

/// Marks the resume segment that completed the coroutine (the frame is
/// still alive; the caller destroys it next). Interleaving point for
/// the DST resume-vs-termination-wave scenario; no-op in production.
inline void mark_final_resume() { TTG_SIM_POINT("coro.final_resume"); }

/// A parked continuation: links the frames waiting on one InputGate.
/// Lives inside the coroutine frame (the awaiter object), so it is
/// valid exactly while the frame is parked — claimers must read all
/// fields before submitting and never touch the node afterwards.
struct Waiter {
  Waiter* next = nullptr;
  Host* host = nullptr;
};

/// One registered source of parked continuations (an InputGate). The
/// World's cancellation purge asks every source to flush its parked
/// frames back into submission, where the engine retires them as
/// cancelled completions.
class CancelSource {
 public:
  virtual ~CancelSource() = default;
  /// Claims every currently parked continuation and submits it (to be
  /// dropped — only called while the owning World is cancelled).
  /// Returns the number claimed. Safe to call repeatedly and
  /// concurrently with fulfill(): each waiter is claimed exactly once.
  virtual std::size_t cancel_parked() = 0;
};

/// Per-World registry of CancelSources, swept by World::purge_cancelled
/// alongside the pending-table purge. Registration is a slow path
/// (gate construction), so a mutex-guarded vector suffices.
class CancelRegistry {
 public:
  void add(CancelSource* s) {
    std::lock_guard<std::mutex> lock(mutex_);
    sources_.push_back(s);
  }
  void remove(CancelSource* s) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = sources_.begin(); it != sources_.end(); ++it) {
      if (*it == s) {
        sources_.erase(it);
        return;
      }
    }
  }
  std::size_t cancel_parked_all() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (CancelSource* s : sources_) n += s->cancel_parked();
    return n;
  }

 private:
  std::mutex mutex_;
  std::vector<CancelSource*> sources_;
};

}  // namespace coro

/// Return type for suspendable task bodies (the TTG_PROCESS_TT_OP_RETURN
/// shape): `ttg::resumable op(const Key&, ...)` bodies may co_await
/// ttg::yield, ttg::suspend_until/suspend_for and ttg::InputGate. The
/// body starts eagerly on the worker that popped the task; ownership of
/// the frame transfers to the event source at the first suspension.
/// Bodies must be started by the runtime (a TT) — calling one directly
/// throws from the frame constructor.
class resumable {
 public:
  struct promise_type {
    coro::Host host{};
    std::exception_ptr error{};

    promise_type() {
      if (coro::detail::t_install == nullptr) {
        throw std::logic_error(
            "ttg::resumable bodies must be invoked by the runtime "
            "(a TT task), not called directly");
      }
      host = *coro::detail::t_install;
    }
    resumable get_return_object() noexcept {
      return resumable(handle_type::from_promise(*this));
    }
    /// Eager start: the first segment runs inline on the popped task's
    /// worker, so a body that never suspends costs exactly the plain
    /// (void-returning) path plus one frame allocation.
    std::suspend_never initial_suspend() noexcept { return {}; }
    /// The frame survives completion so the final resumer can collect
    /// the captured error before destroying it explicitly.
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { error = std::current_exception(); }
  };

  using handle_type = std::coroutine_handle<promise_type>;

  resumable() = default;
  explicit resumable(handle_type h) noexcept : handle_(h) {}
  // Non-owning by design: after a suspension the frame belongs to the
  // event source and this object must not be touched; when the first
  // segment completes without suspending, the executor collects the
  // error and destroys the frame through this handle.
  handle_type handle() const noexcept { return handle_; }

 private:
  handle_type handle_{};
};

/// co_await ttg::yield{}: parks the rest of the body and immediately
/// re-enqueues it as a ready continuation — a fair reschedule through
/// the scheduler (other ready tasks run first). Census: +2 kScheduler.
struct yield {
  bool await_ready() const noexcept { return false; }
  void await_suspend(resumable::handle_type h) const {
    auto& p = h.promise();
    TTG_SIM_POINT("coro.suspend");
    p.host.prepare_suspend(p.host, h.address());
    coro::submit_resume(p.host);
    // The frame is published: nothing below may touch `p` or `h`.
  }
  void await_resume() const noexcept {}
};

/// co_await ttg::suspend_until(tp): parks the body on the engine's
/// timer wheel until `tp` (steady clock), releasing the worker. A past
/// deadline — or a host without a timer backend — degrades to a yield.
/// Census: +2 kSuspend (park + claim) +2 kScheduler.
class suspend_until {
 public:
  explicit suspend_until(
      std::chrono::steady_clock::time_point deadline) noexcept
      : deadline_(deadline) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(resumable::handle_type h) const {
    auto& p = h.promise();
    TTG_SIM_POINT("coro.suspend");
    p.host.prepare_suspend(p.host, h.address());
    if (p.host.timers == nullptr ||
        deadline_ <= std::chrono::steady_clock::now()) {
      coro::submit_resume(p.host);
      return;
    }
    // Publication: the timer thread owns the continuation from here.
    p.host.timers->park_until(p.host.task, deadline_);
  }
  void await_resume() const noexcept {}

 private:
  std::chrono::steady_clock::time_point deadline_;
};

/// co_await ttg::suspend_for(duration): relative-time suspend_until.
template <typename Rep, typename Period>
suspend_until suspend_for(
    const std::chrono::duration<Rep, Period>& d) noexcept {
  return suspend_until(std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(d));
}

/// A one-shot gate a task body parks on until a value arrives — the
/// awaitable form of a not-yet-arrived input edge. Any number of bodies
/// may `co_await gate`; a single `fulfill(value)` (from another task
/// body, another World, or an external thread) wakes them all, each
/// resuming with a const reference to the stored value. Waiters
/// arriving after fulfillment continue without suspending.
///
/// Lifetime: the gate must outlive every awaiting task's World epoch
/// and be destroyed before its World (it registers with the World's
/// cancellation purge, like a TT). One-shot: fulfill() at most once.
///
/// The park/fulfill rendezvous is the DST-explored lock-free core: a
/// Treiber push publishes each waiter, fulfill's exchange claims the
/// whole list exactly once, and the cancellation purge competes for the
/// same waiters with a CAS — the lost-resume and double-resume mutants
/// live here.
template <typename V>
class InputGate final : public coro::CancelSource {
 public:
  /// Unregistered gate: cancellation purge cannot reach its waiters, so
  /// only use when the awaiting World is never aborted mid-park (or
  /// fulfill() is guaranteed). Prefer the World-registered constructor.
  InputGate() = default;

  /// Registers with `world`'s cancellation purge (any type exposing
  /// coro_sources(), i.e. ttg::World) so an abort/deadline retires
  /// parked waiters as cancelled completions.
  template <typename W>
  explicit InputGate(W& world) : registry_(&world.coro_sources()) {
    registry_->add(this);
  }

  ~InputGate() override {
    if (registry_ != nullptr) registry_->remove(this);
    assert(waiters_.load(std::memory_order_acquire) == nullptr ||
           fulfilled());
  }

  InputGate(const InputGate&) = delete;
  InputGate& operator=(const InputGate&) = delete;

  /// Delivers the value and wakes every parked waiter. At most once.
  template <typename U>
  void fulfill(U&& value) {
    value_.emplace(std::forward<U>(value));
    // Claim the entire waiter list and seal the gate in one exchange:
    // the release publishes the value to every resumed waiter, the
    // acquire sees each waiter's node contents.
    TTG_SIM_POINT("coro.gate_claim");
    atomic_ops::count(AtomicOpCategory::kSuspend);
#if defined(TTG_MUTANT_COROUTINE_DOUBLE_RESUME)
    // MUTANT: the claim is split into an unfenced load/store pair, so a
    // fulfill racing the cancellation purge (or a late parker) can hand
    // the same waiter list to two claimers — the frame is resumed
    // twice. The DST suspend-vs-cancel scenario must observe the double
    // resume (a completion accounted twice / a destroyed frame
    // re-entered).
    coro::Waiter* head = waiters_.load(std::memory_order_acquire);
    TTG_SIM_POINT("coro.gate_claim.split");
    waiters_.store(sealed(), std::memory_order_release);
#else
    coro::Waiter* head = waiters_.exchange(sealed(), ord_acq_rel());
#endif
    if (head == sealed()) {
      assert(false && "InputGate::fulfill called twice");
      return;
    }
    resume_list(head);
  }

  /// True once fulfill() ran (acquire: a true result also publishes the
  /// value).
  bool fulfilled() const noexcept {
    return waiters_.load(std::memory_order_acquire) == sealed();
  }

  /// The delivered value; only valid once fulfilled.
  const V& value() const noexcept {
    assert(value_.has_value());
    return *value_;
  }

  /// Cancellation purge hook (coro::CancelSource): claims the current
  /// waiter list and submits each frame for ingress-drop. Only called
  /// while the owning World is cancelled.
  std::size_t cancel_parked() override {
    coro::Waiter* head = waiters_.load(std::memory_order_acquire);
    for (;;) {
      if (head == nullptr || head == sealed()) return 0;
      TTG_SIM_POINT("coro.gate_cancel");
      if (waiters_.compare_exchange_weak(head, nullptr, ord_acq_rel(),
                                         ord_acquire())) {
        break;
      }
    }
    std::size_t n = 0;
    for (coro::Waiter* w = head; w != nullptr; ++n) {
      coro::Waiter* next = w->next;
      // The engine's submit ingress sees the cancelled World and drops
      // the continuation through its cancel hook, which destroys the
      // frame at its suspension point — the body never resumes.
      coro::submit_resume(*w->host);
      w = next;
    }
    return n;
  }

  auto operator co_await() noexcept { return Awaiter{this}; }

 private:
  struct Awaiter {
    InputGate* gate;
    coro::Waiter node{};

    bool await_ready() const noexcept { return gate->fulfilled(); }
    void await_suspend(resumable::handle_type h) {
      auto& p = h.promise();
      TTG_SIM_POINT("coro.suspend");
      p.host.prepare_suspend(p.host, h.address());
      node.host = &p.host;
      if (!gate->park(&node)) {
        // Lost the race with fulfill(): the value is already there.
        // The suspension is fully prepared, so take the scheduler
        // round-trip (a self-resume) instead of unwinding it.
        coro::submit_resume(p.host);
      }
      // Published either way: nothing below may touch the frame.
    }
    const V& await_resume() const noexcept { return gate->value(); }
  };

  /// Sentinel list head meaning "fulfilled": distinct from any real
  /// waiter and stable for the gate's lifetime.
  coro::Waiter* sealed() const noexcept {
    return const_cast<coro::Waiter*>(&sealed_tag_);
  }

  /// Treiber-push of a prepared waiter. Returns false when the gate was
  /// fulfilled first (the caller must self-resume).
  bool park(coro::Waiter* w) {
    coro::Waiter* head = waiters_.load(std::memory_order_acquire);
    for (;;) {
      if (head == sealed()) return false;
      w->next = head;
      TTG_SIM_POINT("coro.gate_park");
      atomic_ops::count(AtomicOpCategory::kSuspend);
      if (waiters_.compare_exchange_weak(head, w, ord_acq_rel(),
                                         ord_acquire())) {
        return true;
      }
    }
  }

  void resume_list(coro::Waiter* head) {
    for (coro::Waiter* w = head; w != nullptr;) {
      // Read everything out of the node *before* submitting: the frame
      // (and with it the node) may be resumed and destroyed the moment
      // the continuation reaches the scheduler.
      coro::Waiter* next = w->next;
      coro::Host* host = w->host;
#if defined(TTG_MUTANT_COROUTINE_LOST_RESUME)
      // MUTANT: the claimed continuation is never submitted — a classic
      // lost resume. The waiter's World can never drain (its pending
      // count stays >= 1 forever); the DST scenarios must flag the
      // stuck census.
      (void)host;
#else
      coro::submit_resume(*host);
#endif
      w = next;
    }
  }

  std::atomic<coro::Waiter*> waiters_{nullptr};
  coro::Waiter sealed_tag_{};
  std::optional<V> value_{};
  coro::CancelRegistry* registry_ = nullptr;
};

}  // namespace ttg
